"""Shared run state for a DiggerBees simulation.

One :class:`RunState` instance holds everything the grid's warps share:
the graph, the global ``visited``/``parent`` arrays, the per-block shared
state (HotRings, 32-bit active masks), the global pending-entry counter
used for termination, and the counters/trace sinks.

Because the event engine executes steps atomically, mutations here give
exact GPU atomic semantics (a CAS winner's update is visible to every
later step).  The optimistic two-phase steal protocol (observe, then
CAS-validate on a later step) is what re-introduces realistic races.
"""

from __future__ import annotations

import random
from array import array
from typing import List, Optional

import numpy as np

from repro.core.config import DiggerBeesConfig
from repro.core.twolevel_stack import OneLevelStack, WarpStack
from repro.errors import SimulationError
from repro.graphs.csr import CSRGraph
from repro.sim.device import DeviceSpec
from repro.sim.trace import SimCounters, TraceLog
from repro.utils.rng import make_rng, spawn
from repro.validate.reference import ROOT_PARENT, UNVISITED_PARENT

__all__ = ["BatchSlabs", "BlockState", "RunState"]


class BatchSlabs:
    """Batched structure-of-arrays storage for B lockstep runs (hive).

    Every per-run slab that :class:`RunState` normally allocates as a
    plain list / ``array('q')`` grows a leading batch axis here and
    becomes one NumPy array shared by B runs.  Each run's
    :class:`RunState` receives *row views* (``slab[row]``) of these
    arrays, so the existing object API (HotRing/ColdSeg pointers,
    active masks, contention debt, visited/parent) operates on exactly
    the storage the hive engine's vectorized tick gathers across the
    batch dimension.

    Rows of a C-contiguous 2-D array are themselves contiguous, so the
    per-run views support everything the private backings do
    (memoryview of the visited row included).  Requires a two-level
    config: the hive engine never runs the one-level ablation.
    """

    __slots__ = ("batch", "n_agents", "hot_size", "n_blocks",
                 "hot_vertex", "hot_offset", "hot_ptr", "cold_ptr",
                 "active_mask", "debt", "visited", "parent",
                 "steal_kind", "steal_victim", "steal_token",
                 "steal_remote")

    def __init__(self, batch: int, config: DiggerBeesConfig,
                 n_vertices: int):
        if batch < 1:
            raise SimulationError(f"batch must be >= 1, got {batch}")
        if not config.two_level:
            raise SimulationError(
                "BatchSlabs requires a two-level config (hive engine)"
            )
        n_agents = config.n_warps
        self.batch = batch
        self.n_agents = n_agents
        self.hot_size = config.hot_size
        self.n_blocks = config.n_blocks
        self.hot_vertex = np.zeros((batch, n_agents, config.hot_size),
                                   dtype=np.int64)
        self.hot_offset = np.zeros((batch, n_agents, config.hot_size),
                                   dtype=np.int64)
        # Pointer layout matches the scalar slabs: hot (head, tail) and
        # cold (top, bottom) pairs at (2g, 2g + 1) for warp g.
        self.hot_ptr = np.zeros((batch, 2 * n_agents), dtype=np.int64)
        self.cold_ptr = np.zeros((batch, 2 * n_agents), dtype=np.int64)
        self.active_mask = np.zeros((batch, config.n_blocks), dtype=np.int64)
        self.debt = np.zeros((batch, n_agents), dtype=np.int64)
        self.visited = np.zeros((batch, n_vertices), dtype=np.uint8)
        self.parent = np.full((batch, n_vertices), UNVISITED_PARENT,
                              dtype=np.int64)
        # Vectorized steal-protocol slabs (``hive_steal="vector"``).
        # Row-pinned like visited/parent: a pending reservation records
        # the kind (0 = none, 1 = intra, 2 = inter), the *victim's* flat
        # warp index, the observed CAS token (HotRing tail / ColdSeg
        # bottom) and the remote flag; the hive's batched reservation
        # pass validates the token against the live pointer slabs one
        # tick later, exactly like the scalar two-phase protocol.
        self.steal_kind = np.zeros((batch, n_agents), dtype=np.int8)
        self.steal_victim = np.zeros((batch, n_agents), dtype=np.int64)
        self.steal_token = np.zeros((batch, n_agents), dtype=np.int64)
        self.steal_remote = np.zeros((batch, n_agents), dtype=bool)


class BlockState:
    """Per-thread-block shared state: the warps' stacks and the active mask.

    Structure-of-arrays backing (turbo fused loop): the 32-bit active
    mask and the per-warp contention-debt counters can live inside
    run-wide slabs preallocated by :class:`RunState` — ``mask_slab`` is
    a shared list with one slot per block and ``debt`` is a
    ``memoryview`` slice of the run's flat debt slab.  The
    ``active_mask`` property and the indexed ``contention_debt`` reads
    and writes address the same storage the fused loop binds locally,
    so both views stay coherent.  A standalone ``BlockState`` allocates
    private storage with identical semantics.
    """

    __slots__ = ("block_id", "stacks", "n_warps", "contention_debt",
                 "gpu_id", "_mask_slab", "_mask_i")

    def __init__(self, block_id: int, n_warps: int, gpu_id: int = 0, *,
                 mask_slab: Optional[list] = None, mask_index: int = 0,
                 debt: Optional[memoryview] = None):
        self.block_id = block_id
        self.gpu_id = gpu_id
        self.n_warps = n_warps
        self.stacks: List = []
        if mask_slab is None:
            mask_slab, mask_index = [0], 0
        # bit w set <=> warp w active (paper §3.4)
        self._mask_slab = mask_slab
        self._mask_i = mask_index
        mask_slab[mask_index] = 0
        #: Cycles of victim-side slowdown accrued by steals against each
        #: warp (cache-line recovery + atomic serialization); charged to
        #: the victim's next step and cleared.
        self.contention_debt = (debt if debt is not None
                                else memoryview(array("q", (0,) * n_warps)))

    @property
    def active_mask(self) -> int:
        return self._mask_slab[self._mask_i]

    @active_mask.setter
    def active_mask(self, value: int) -> None:
        self._mask_slab[self._mask_i] = value

    def set_active(self, warp: int, active: bool) -> None:
        slab, i = self._mask_slab, self._mask_i
        if active:
            slab[i] |= (1 << warp)
        else:
            slab[i] &= ~(1 << warp)

    def is_active(self, warp: int) -> bool:
        return bool(self._mask_slab[self._mask_i] & (1 << warp))

    @property
    def idle(self) -> bool:
        """A block is idle when every warp's bit is clear."""
        return self._mask_slab[self._mask_i] == 0

    def workload(self) -> int:
        """Cumulative pending entries in the block (two-choice load signal)."""
        total = 0
        for s in self.stacks:
            if type(s) is WarpStack:  # inlined len(hot) + len(cold)
                hot, cold = s.hot, s.cold
                ptrs = hot._ptrs  # direct slab read: skip property dispatch
                cptrs = cold._ptrs
                d = ptrs[hot._hi] - ptrs[hot._ti]
                if d < 0:
                    d += hot.size
                total += d + cptrs[cold._ti] - cptrs[cold._bi]
            else:
                total += len(s)
        return total

    def cold_rest(self, warp: int) -> int:
        """Remaining ColdSeg entries of one warp (inter-steal victim metric)."""
        stack = self.stacks[warp]
        if isinstance(stack, WarpStack):
            return len(stack.cold)
        return 0

    def hot_rest(self, warp: int) -> int:
        """Remaining HotRing entries of one warp (intra-steal victim metric)."""
        stack = self.stacks[warp]
        if isinstance(stack, WarpStack):
            return len(stack.hot)
        return len(stack)  # one-level stack: everything is stealable


class RunState:
    """Global state of one DiggerBees run (see module docstring)."""

    def __init__(
        self,
        graph: CSRGraph,
        root: int,
        config: DiggerBeesConfig,
        device: DeviceSpec,
        *,
        slabs: Optional["BatchSlabs"] = None,
        slab_row: int = 0,
    ):
        graph._check_vertex(root)
        config.check_fits_device(device)
        self.graph = graph
        self.root = root
        self.config = config
        self.device = device
        self.costs = device.costs

        n = graph.n_vertices
        if slabs is None:
            self.visited = np.zeros(n, dtype=np.uint8)
            self.parent = np.full(n, UNVISITED_PARENT, dtype=np.int64)
        else:
            # Hive batch backing: this run's state is row ``slab_row``
            # of every batched slab (see BatchSlabs).  The rows are
            # contiguous views, so everything below — including the
            # memoryview fast path — works unchanged.
            if not (0 <= slab_row < slabs.batch):
                raise SimulationError(
                    f"slab_row {slab_row} outside batch {slabs.batch}"
                )
            self.visited = slabs.visited[slab_row]
            self.parent = slabs.parent[slab_row]

        # Fast-path mirrors of the hot read-only data.  The simulator's
        # inner loop inspects <= 32 neighbours per step; at that size the
        # per-call overhead of NumPy fancy indexing dominates, so the
        # expand fast path scans plain Python lists (C-array of object
        # pointers, no per-read boxing of int64 scalars) and reads the
        # visited flags through a memoryview of the *same* buffer as
        # ``self.visited`` — every write through the NumPy array is
        # immediately visible here, so there is a single source of truth.
        self.row_ptr_list, self.col_idx_list = graph.adjacency_lists()
        self.visited_mv = memoryview(self.visited)

        #: Total stack entries across every HotRing/ColdSeg.  A vertex is
        #: pushed exactly once (the visited CAS guards it), entries only
        #: move between structures, and a pop retires one entry — so
        #: ``pending == 0`` iff the traversal is complete.
        self.pending = 0

        self.counters = SimCounters()
        self.trace: Optional[TraceLog] = TraceLog() if config.trace else None

        #: Optional steal-protocol invariant monitor (``repro.check``).
        #: None in production runs; the protocol code guards every hook
        #: call with a None test so the hot path pays one comparison.
        self.monitor = None
        #: Fuzzing: seeded RNG for adversarial (random-qualifying) steal
        #: victim selection; None keeps the deterministic max-depth scan.
        self.fuzz_rng: Optional[random.Random] = (
            random.Random(0x5EEDFA ^ config.seed)
            if config.adversarial_victims else None
        )

        rng = make_rng(config.seed)
        self.block_rngs = spawn(rng, config.n_blocks)

        # Structure-of-arrays slabs (turbo fused loop).  Hot entry
        # storage, hot head/tail pointers, per-block active masks, and
        # per-warp contention debt live in run-wide preallocated
        # storage; the per-warp/per-block objects hold *views* into it
        # (rows, slot indices, memoryview slices), so the fused loop can
        # bind each slab to one local variable and index it by warp
        # while every other code path keeps using the object API.
        n_agents = config.n_warps
        wpb = config.warps_per_block
        if slabs is not None:
            # Batched backing (hive): every slab is one row of the
            # shared batch arrays.  Indexing a row yields views with
            # identical semantics to the private backings below.
            self.hot_vertex_slab = slabs.hot_vertex[slab_row]
            self.hot_offset_slab = slabs.hot_offset[slab_row]
            self.hot_ptr_slab = slabs.hot_ptr[slab_row]
            self.cold_ptr_slab = slabs.cold_ptr[slab_row]
            self.active_mask_slab = slabs.active_mask[slab_row]
            self.contention_debt_slab = slabs.debt[slab_row]
            debt_mv = self.contention_debt_slab
        else:
            if config.two_level:
                # One row (plain list — see HotRing) of entry storage per
                # warp, preallocated here so construction is one pass.
                self.hot_vertex_slab = [[0] * config.hot_size
                                        for _ in range(n_agents)]
                self.hot_offset_slab = [[0] * config.hot_size
                                        for _ in range(n_agents)]
            else:
                self.hot_vertex_slab = None
                self.hot_offset_slab = None
            # Plain lists, not array('q'): values are small non-negative
            # indices/masks (no overflow concern) and list indexing is the
            # cheapest subscript in CPython — these slots are read several
            # times per simulated step.
            self.hot_ptr_slab = [0] * (2 * n_agents)
            self.cold_ptr_slab = [0] * (2 * n_agents)
            self.active_mask_slab = [0] * config.n_blocks
            self.contention_debt_slab = array("q", (0,) * n_agents)
            debt_mv = memoryview(self.contention_debt_slab)

        cold_cap = max(1, n // config.n_warps)  # the paper's nv/nw sizing
        self.blocks: List[BlockState] = []
        for b in range(config.n_blocks):
            block = BlockState(b, wpb, gpu_id=config.gpu_of_block(b),
                               mask_slab=self.active_mask_slab, mask_index=b,
                               debt=debt_mv[b * wpb:(b + 1) * wpb])
            for w in range(wpb):
                if config.two_level:
                    g = b * wpb + w
                    block.stacks.append(WarpStack(
                        hot_size=config.hot_size,
                        flush_batch=config.flush_batch,
                        refill_batch=config.refill_batch,
                        cold_reserve=config.cold_reserve,
                        configured_cold_capacity=cold_cap,
                        flush_policy=config.flush_policy,
                        hot_vertex=self.hot_vertex_slab[g],
                        hot_offset=self.hot_offset_slab[g],
                        hot_ptrs=self.hot_ptr_slab,
                        hot_base=2 * g,
                        cold_ptrs=self.cold_ptr_slab,
                        cold_base=2 * g,
                    ))
                else:
                    block.stacks.append(OneLevelStack())
            self.blocks.append(block)

        # Root initialization (paper §3.6: push root into Warp0's HotRing).
        self.visited[root] = 1
        self.parent[root] = ROOT_PARENT
        self.counters.vertices_visited += 1
        self.counters.record_task(0, 0)
        root_stack = self.blocks[0].stacks[0]
        if isinstance(root_stack, WarpStack):
            root_stack.hot.push(root, int(graph.row_ptr[root]))
        else:
            root_stack.push(root, int(graph.row_ptr[root]))
        self.counters.pushes += 1
        self.pending = 1
        self.blocks[0].set_active(0, True)

    # ------------------------------------------------------------------
    def is_terminated(self) -> bool:
        """Global termination: no pending entries anywhere."""
        return self.pending == 0

    def gpu_idle(self, gpu_id: int) -> bool:
        """True when every block of ``gpu_id`` is idle (multi-GPU ext.)."""
        bpg = self.config.blocks_per_gpu
        start = gpu_id * bpg
        return all(self.blocks[b].idle for b in range(start, start + bpg))

    def gpu_leader_block(self, gpu_id: int) -> int:
        """The block whose leader warp performs remote steals for a GPU."""
        return gpu_id * self.config.blocks_per_gpu

    def try_claim_vertex(self, v: int, parent: int) -> bool:
        """The visited atomicCAS (paper §3.3): claim ``v`` for ``parent``.

        Returns True if this caller won the claim.  Step atomicity makes
        the operation linearizable; the counters still record the attempt
        so contention statistics are meaningful.
        """
        counters = self.counters
        counters.cas_attempts += 1
        if self.visited_mv[v]:  # reads the same buffer as self.visited
            counters.cas_failures += 1
            return False
        self.visited[v] = 1
        self.parent[v] = parent
        counters.vertices_visited += 1
        return True

    def record(self, time: int, block: int, warp: int, kind: str,
               detail: tuple = ()) -> None:
        if self.trace is not None:
            self.trace.record(time, block, warp, kind, detail)

    def total_entries(self) -> int:
        """Recount entries across all stacks (invariant check for tests)."""
        return sum(len(s) for blk in self.blocks for s in blk.stacks)

    def check_invariants(self) -> None:
        """Expensive consistency assertions, used by tests after runs.

        * ``pending`` matches the actual entry count;
        * every stacked vertex is marked visited (claimed before push);
        * no vertex appears in two stacks (entries move, never duplicate).
        """
        actual = self.total_entries()
        if actual != self.pending:
            raise SimulationError(
                f"pending counter {self.pending} != actual entries {actual}"
            )
        seen: set = set()
        for blk in self.blocks:
            for stack in blk.stacks:
                for v, _ in stack.snapshot():
                    if not self.visited[v]:
                        raise SimulationError(
                            f"stacked vertex {v} is not marked visited"
                        )
                    if v in seen:
                        raise SimulationError(
                            f"vertex {v} appears in more than one stack"
                        )
                    seen.add(v)
