"""Backend dispatch: the paper's BFS/DFS crossover, productionized.

The crossover analysis says level-synchronous BFS wins on shallow-wide
graphs (few levels, huge frontiers) and collapses on deep ones (every
level pays a launch, and there are thousands); hierarchical work-
stealing DFS is the mirror image.  :func:`choose_backend` turns that
into a routing policy over the engine families this repo actually
has — the DFS simulation tiers (``"dfs"``: fastpath/turbo/hive), the
bit-packed single-root frontier engine (``"frontier"``,
:mod:`repro.core.frontier`), and the lane-batched swarm frontier
(``"swarm"``, :mod:`repro.core.swarm`, eligible only when the caller
can batch several roots) — keyed on the structural regime from
:func:`repro.graphs.properties.classify_regime`.

Routing rules, in order:

1. an explicit ``requested`` backend (``"dfs"``/``"frontier"``/
   ``"swarm"``) wins;
2. under ``"auto"``, a query that carries engine-config overrides is
   pinned to ``"dfs"`` — a client that parameterizes grid shape, steal
   cutoffs, or schedule perturbation is asking for a specific DFS
   *simulation* (cycles, counters and all), which the frontier engines
   cannot answer;
3. degenerate graphs (no vertices, a single vertex, or zero edges —
   which covers the all-isolated case) route straight to the frontier
   engine without paying the regime BFS: every backend answers them in
   one trivial level, and the regime classifier's depth heuristics are
   meaningless on them;
4. with a calibration table available (fitted from
   ``bench_crossover.py --record`` artifacts, persisted at
   ``benchmarks/calibration_routing.json``), the backend with the
   smallest *measured* per-run wall for the graph's regime wins —
   ``"swarm"`` is only eligible when ``batch_hint`` says the caller
   actually has >= 2 roots to batch;
5. otherwise the regime proxy: shallow graphs go to the frontier side
   (swarm when batchable, single-root frontier otherwise) and deep/mid
   graphs to DFS.

Decisions are pure functions of ``(regime, requested, overrides,
batch_hint, calibration)``, so a resolved backend is stable per graph
fingerprint — the serve layer caches the regime per resident graph and
bakes the resolved backend into result-cache keys.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping, Optional

from repro.errors import SimulationError
from repro.graphs.csr import CSRGraph

__all__ = ["BACKENDS", "BACKEND_CHOICES", "SWARM_MIN_BATCH",
           "BackendDecision", "choose_backend", "graph_regime",
           "calibration_path", "load_calibration"]

#: Engine families a query can resolve to.
BACKENDS = ("dfs", "frontier", "swarm")

#: Valid values for the ``ServeConfig.backend`` knob / ``--backend`` flags.
BACKEND_CHOICES = ("auto",) + BACKENDS

#: Minimum batchable-root count before auto routing considers swarm —
#: a swarm of one lane is the single-root frontier engine plus overhead.
SWARM_MIN_BATCH = 2

#: Where ``bench_crossover.py --record`` persists the fitted table.
CALIBRATION_FILENAME = "calibration_routing.json"

# (path, mtime_ns) -> parsed table.  One stat per call keeps routing
# decisions hot-reloadable after a fresh --record without re-parsing.
_CALIBRATION_CACHE: dict = {}


@dataclass(frozen=True)
class BackendDecision:
    """One routing decision and why it was made."""

    backend: str      # "dfs" | "frontier" | "swarm"
    regime: str       # "deep" | "mid" | "shallow" | "degenerate" | "unknown"
    reason: str       # "forced" | "config-pinned" | "degenerate"
    #                 # | "calibrated" | "regime"


def graph_regime(graph: CSRGraph, root: int = 0) -> str:
    """Structural regime of ``graph`` (one BFS; cache per fingerprint)."""
    from repro.graphs.properties import regime

    return regime(graph, root)


def calibration_path() -> Path:
    """Default location of the persisted routing-calibration artifact."""
    return Path(__file__).resolve().parents[3] / "benchmarks" \
        / CALIBRATION_FILENAME


def load_calibration(path: Optional[Path] = None) -> Optional[dict]:
    """Parsed calibration table, or ``None`` when no artifact exists.

    The table maps regimes to measured per-run walls per backend (see
    ``bench_crossover.py --record``).  Results are cached per file
    mtime, so a fresh recording takes effect without a restart and a
    missing file costs one ``stat`` per decision.
    """
    path = Path(path) if path is not None else calibration_path()
    try:
        mtime = path.stat().st_mtime_ns
    except OSError:
        return None
    key = (str(path), mtime)
    if key not in _CALIBRATION_CACHE:
        try:
            table = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        if not isinstance(table, dict) or \
                not isinstance(table.get("regimes"), dict):
            return None
        _CALIBRATION_CACHE.clear()
        _CALIBRATION_CACHE[key] = table
    return _CALIBRATION_CACHE[key]


def _is_degenerate(graph: CSRGraph) -> bool:
    """No vertices, one vertex, or no edges (covers all-isolated)."""
    return graph.n_vertices <= 1 or graph.n_edges == 0


def _calibrated_choice(table: Mapping[str, Any], regime: str,
                       batch_hint: int) -> Optional[str]:
    """Cheapest measured backend for ``regime``, or ``None``."""
    entry = table.get("regimes", {}).get(regime)
    if not isinstance(entry, Mapping):
        return None
    eligible = {}
    for backend, cost in entry.items():
        if backend not in BACKENDS:
            continue
        if not isinstance(cost, (int, float)) or cost <= 0:
            continue
        if backend == "swarm" and batch_hint < SWARM_MIN_BATCH:
            continue
        eligible[backend] = float(cost)
    if not eligible:
        return None
    # Deterministic tie-break by declaration order.
    return min(eligible, key=lambda b: (eligible[b], BACKENDS.index(b)))


def choose_backend(graph: Optional[CSRGraph] = None, *,
                   requested: str = "auto",
                   overrides: Optional[Mapping[str, Any]] = None,
                   regime: Optional[str] = None,
                   batch_hint: int = 1,
                   calibration: Optional[Mapping[str, Any]] = None
                   ) -> BackendDecision:
    """Resolve the backend for one traversal query.

    ``regime`` short-circuits the BFS probe when the caller already
    profiled the graph (the serve layer memoizes it per resident
    entry); otherwise ``graph`` is profiled on the spot.  ``batch_hint``
    is how many same-graph roots the caller can coalesce into one
    engine invocation (the serve admission window, a bench batch tier);
    swarm is only auto-eligible at >= :data:`SWARM_MIN_BATCH`.
    ``calibration`` overrides the on-disk table (``None`` loads the
    default artifact; an empty mapping disables calibration).
    """
    if requested not in BACKEND_CHOICES:
        raise SimulationError(
            f"backend must be one of {BACKEND_CHOICES}, got {requested!r}")
    if requested != "auto":
        return BackendDecision(backend=requested,
                               regime=regime or "unknown",
                               reason="forced")
    if overrides:
        return BackendDecision(backend="dfs",
                               regime=regime or "unknown",
                               reason="config-pinned")
    if graph is not None and _is_degenerate(graph):
        return BackendDecision(backend="frontier", regime="degenerate",
                               reason="degenerate")
    if regime is None:
        if graph is None:
            raise SimulationError(
                "auto dispatch needs a graph or a precomputed regime")
        regime = graph_regime(graph)
    table = calibration if calibration is not None else load_calibration()
    if table:
        backend = _calibrated_choice(table, regime, batch_hint)
        if backend is not None:
            return BackendDecision(backend=backend, regime=regime,
                                   reason="calibrated")
    if regime == "shallow":
        backend = "swarm" if batch_hint >= SWARM_MIN_BATCH else "frontier"
    else:
        backend = "dfs"
    return BackendDecision(backend=backend, regime=regime, reason="regime")
