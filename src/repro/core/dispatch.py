"""Backend dispatch: the paper's BFS/DFS crossover, productionized.

The crossover analysis says level-synchronous BFS wins on shallow-wide
graphs (few levels, huge frontiers) and collapses on deep ones (every
level pays a launch, and there are thousands); hierarchical work-
stealing DFS is the mirror image.  :func:`choose_backend` turns that
into a routing policy over the two engine families this repo actually
has — the DFS simulation tiers (``"dfs"``: fastpath/turbo/hive) and the
bit-packed frontier engine (``"frontier"``,
:mod:`repro.core.frontier`) — keyed on the structural regime from
:func:`repro.graphs.properties.classify_regime`.

Routing rules, in order:

1. an explicit ``requested`` backend (``"dfs"``/``"frontier"``) wins;
2. under ``"auto"``, a query that carries engine-config overrides is
   pinned to ``"dfs"`` — a client that parameterizes grid shape, steal
   cutoffs, or schedule perturbation is asking for a specific DFS
   *simulation* (cycles, counters and all), which the frontier engine
   cannot answer;
3. otherwise shallow graphs go to the frontier engine and deep/mid
   graphs to DFS.

Decisions are pure functions of ``(regime, requested, overrides)``, so
a resolved backend is stable per graph fingerprint — the serve layer
caches the regime per resident graph and bakes the resolved backend
into result-cache keys.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Optional

from repro.errors import SimulationError
from repro.graphs.csr import CSRGraph

__all__ = ["BACKENDS", "BACKEND_CHOICES", "BackendDecision",
           "choose_backend", "graph_regime"]

#: Engine families a query can resolve to.
BACKENDS = ("dfs", "frontier")

#: Valid values for the ``ServeConfig.backend`` knob / ``--backend`` flags.
BACKEND_CHOICES = ("auto",) + BACKENDS


@dataclass(frozen=True)
class BackendDecision:
    """One routing decision and why it was made."""

    backend: str      # "dfs" | "frontier"
    regime: str       # "deep" | "mid" | "shallow" | "unknown"
    reason: str       # "forced" | "config-pinned" | "regime"


def graph_regime(graph: CSRGraph, root: int = 0) -> str:
    """Structural regime of ``graph`` (one BFS; cache per fingerprint)."""
    from repro.graphs.properties import regime

    return regime(graph, root)


def choose_backend(graph: Optional[CSRGraph] = None, *,
                   requested: str = "auto",
                   overrides: Optional[Mapping[str, Any]] = None,
                   regime: Optional[str] = None) -> BackendDecision:
    """Resolve the backend for one traversal query.

    ``regime`` short-circuits the BFS probe when the caller already
    profiled the graph (the serve layer memoizes it per resident
    entry); otherwise ``graph`` is profiled on the spot.
    """
    if requested not in BACKEND_CHOICES:
        raise SimulationError(
            f"backend must be one of {BACKEND_CHOICES}, got {requested!r}")
    if requested != "auto":
        return BackendDecision(backend=requested,
                               regime=regime or "unknown",
                               reason="forced")
    if overrides:
        return BackendDecision(backend="dfs",
                               regime=regime or "unknown",
                               reason="config-pinned")
    if regime is None:
        if graph is None:
            raise SimulationError(
                "auto dispatch needs a graph or a precomputed regime")
        regime = graph_regime(graph)
    backend = "frontier" if regime == "shallow" else "dfs"
    return BackendDecision(backend=backend, regime=regime, reason="regime")
