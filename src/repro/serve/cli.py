"""``python -m repro.serve`` — daemon lifecycle and ad-hoc queries.

Subcommands
-----------
``start``   run the daemon in the foreground until ``stop``/SIGINT
``stop``    ask a running daemon to drain and exit
``status``  print a running daemon's status JSON
``query``   run one query against a running daemon and print the result

The socket path defaults to ``$REPRO_SERVE_SOCKET`` or a per-user
tempdir path; every subcommand takes ``--socket`` to override.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
from typing import List, Optional

from repro.errors import ReproError, ServeError

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Persistent traversal query daemon over a resident "
                    "shared-memory graph corpus.")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("start", help="run the daemon (foreground)")
    p.add_argument("--socket", default=None,
                   help="unix socket path (default: $REPRO_SERVE_SOCKET "
                        "or a tempdir path)")
    p.add_argument("--corpus", default="micro",
                   help="corpus selector: micro | representative | demo "
                        "| comma-separated collection names")
    p.add_argument("--window", type=float, default=None,
                   help="batch window in seconds")
    p.add_argument("--max-batch", type=int, default=None,
                   help="max queries coalesced into one hive batch")
    p.add_argument("--jobs", type=int, default=None,
                   help="worker processes (0 = in-daemon threads)")
    p.add_argument("--cache-entries", type=int, default=None,
                   help="per-graph result-cache capacity (0 disables)")
    p.add_argument("--cache-dir", default=None,
                   help="result-cache spill directory ('off' = memory "
                        "only)")
    p.add_argument("--no-shm", action="store_true",
                   help="do not export graphs to shared memory")
    p.add_argument("--backend", default=None,
                   choices=("auto", "dfs", "frontier"),
                   help="engine family for dfs queries (auto routes "
                        "per graph regime)")
    p.add_argument("--shards", type=int, default=None,
                   help="answer override-free dfs queries on large "
                        "graphs with the sharded tier (k districts; "
                        "0/1 = off)")

    for name, help_ in (("stop", "drain and stop a running daemon"),
                        ("status", "print daemon status JSON"),
                        ("ping", "round-trip check")):
        p = sub.add_parser(name, help=help_)
        p.add_argument("--socket", default=None)

    p = sub.add_parser("query", help="run one query and print the result")
    p.add_argument("op", help="dfs | scc | toposort | cycles | "
                              "biconnectivity | spanning")
    p.add_argument("graph", help="resident graph name")
    p.add_argument("--root", type=int, default=0)
    p.add_argument("--config", default=None,
                   help="JSON object of DiggerBeesConfig overrides")
    p.add_argument("--no-cache", action="store_true")
    p.add_argument("--socket", default=None)
    return parser


async def _run_daemon(args: argparse.Namespace) -> int:
    import os

    from repro.core.config import ServeConfig
    from repro.serve.client import default_socket_path
    from repro.serve.corpus import load_corpus
    from repro.serve.server import ServeServer
    from repro.utils.malloc import retain_large_blocks

    # The daemon runs swarm batches back to back; retaining the malloc
    # arena keeps their transient state resident instead of re-faulting
    # it from the kernel on every batch.
    retain_large_blocks()

    config = ServeConfig()
    overrides = {}
    if args.window is not None:
        overrides["batch_window"] = args.window
    if args.max_batch is not None:
        overrides["max_batch"] = args.max_batch
    if args.jobs is not None:
        overrides["jobs"] = args.jobs
    if args.cache_entries is not None:
        overrides["cache_entries"] = args.cache_entries
    if args.cache_dir is not None:
        overrides["cache_dir"] = args.cache_dir
    if args.backend is not None:
        overrides["backend"] = args.backend
    if args.shards is not None:
        overrides["shards"] = args.shards
    if overrides:
        config = config.with_(**overrides)

    socket_path = args.socket or default_socket_path()
    if os.path.exists(socket_path):
        # A live daemon refuses to be shadowed; a stale socket is removed.
        try:
            from repro.serve.client import SyncServeClient

            with SyncServeClient(socket_path, timeout=2.0) as probe:
                probe.ping()
            print(f"error: a daemon is already serving {socket_path}",
                  file=sys.stderr)
            return 1
        except ServeError:
            os.unlink(socket_path)

    corpus = load_corpus(args.corpus, share=not args.no_shm)
    server = ServeServer(corpus, config)
    await server.start(socket_path)
    print(f"serving {len(corpus)} graph(s) "
          f"[{', '.join(corpus.names())}] on {socket_path}", flush=True)
    try:
        await server.serve_until_shutdown()
    except (KeyboardInterrupt, asyncio.CancelledError):
        await server.stop()
    finally:
        corpus.close()
        if os.path.exists(socket_path):
            try:
                os.unlink(socket_path)
            except OSError:
                pass
    print("daemon stopped", flush=True)
    return 0


def _client(args: argparse.Namespace):
    from repro.serve.client import SyncServeClient

    return SyncServeClient(args.socket)


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "start":
            try:
                return asyncio.run(_run_daemon(args))
            except KeyboardInterrupt:
                return 0
        if args.command == "stop":
            with _client(args) as client:
                client.shutdown()
            print("daemon stopping")
            return 0
        if args.command == "status":
            with _client(args) as client:
                print(json.dumps(client.status(), indent=2, sort_keys=True))
            return 0
        if args.command == "ping":
            with _client(args) as client:
                resp = client.ping()
            print(json.dumps(resp.result))
            return 0
        if args.command == "query":
            config = json.loads(args.config) if args.config else None
            with _client(args) as client:
                resp = client.query(args.op, args.graph, root=args.root,
                                    config=config,
                                    no_cache=args.no_cache)
            print(json.dumps({"result": resp.result,
                              "cached": resp.cached,
                              "batch": resp.batch,
                              "elapsed_ms": resp.elapsed_ms},
                             sort_keys=True))
            return 0
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except json.JSONDecodeError as exc:
        print(f"error: bad --config JSON: {exc}", file=sys.stderr)
        return 1
    raise AssertionError(f"unhandled command {args.command!r}")
