"""Query execution for the traversal service.

Module-level, picklable functions so the daemon can run them either
in-process (``jobs = 0``) or across the persistent worker pool of
:mod:`repro.bench.harness` (``jobs >= 1``) with identical results.
Workers receive graphs as shared-memory specs (attached and cached via
the harness's worker-side graph cache) or, on the pickle-fallback path,
as the graphs themselves.

Failure semantics: *query* failures — an over-budget simulation, a
toposort on a cyclic graph, an out-of-range root — are returned as
per-task error markers so one bad query in a hive batch cannot poison
its neighbours or look like an infrastructure fault.  Infrastructure
failures (dangling shm segment, broken pool) raise, and the daemon's
dispatch layer degrades: re-export, pickle, or in-process execution.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.core.config import DiggerBeesConfig
from repro.errors import ProtocolError, ReproError
from repro.serve.protocol import (
    QUERY_OPS,
    dfs_result_to_dict,
    frontier_result_to_dict,
    sharded_result_to_dict,
)

__all__ = [
    "build_engine_config",
    "execute_query",
    "execute_dfs_batch",
    "ERROR_KEY",
]

#: Per-task error marker key in batch results.
ERROR_KEY = "__error__"

#: DiggerBeesConfig fields a request may override (everything except the
#: perturbation knobs would also be safe, but fuzz configs need those
#: too for the serve-diff rung, so the whole dataclass is wire-exposed).
_CONFIG_FIELDS = frozenset(DiggerBeesConfig.__dataclass_fields__)


def build_engine_config(overrides: Optional[Dict[str, Any]],
                        ) -> DiggerBeesConfig:
    """Engine config for one DFS query (daemon default + overrides)."""
    if not overrides:
        return DiggerBeesConfig()
    unknown = set(overrides) - _CONFIG_FIELDS
    if unknown:
        raise ProtocolError(
            f"unknown engine-config field(s) {sorted(unknown)}")
    # ReproError (SimulationError) from validation propagates to the
    # caller, which turns it into a per-request error response.
    return DiggerBeesConfig(**overrides)


def _resolve(wire_graph):
    """Attach a shm spec (worker-side cached) or pass a graph through."""
    from repro.bench.harness import _resolve_task_graph

    return _resolve_task_graph(wire_graph)


def _error_marker(exc: BaseException) -> Dict[str, Any]:
    return {ERROR_KEY: {"type": type(exc).__name__, "message": str(exc)}}


# ---------------------------------------------------------------------------
# Single queries.
# ---------------------------------------------------------------------------

def _dfs(graph, root: int, overrides) -> Dict[str, Any]:
    from repro.core.diggerbees import run_diggerbees

    res = run_diggerbees(graph, root, config=build_engine_config(overrides))
    return dfs_result_to_dict(res)


def _frontier(graph, root: int, overrides) -> Dict[str, Any]:
    # Overrides are validated (bad configs must fail their own request)
    # but don't parameterize the frontier engine: under "auto" routing a
    # query with overrides is pinned to DFS before it gets here, and a
    # forced-frontier daemon answers every DFS query with the one
    # deterministic min-parent tree.
    build_engine_config(overrides)
    from repro.core.frontier import run_frontier

    return frontier_result_to_dict(run_frontier(graph, root))


def _swarm_single(graph, root: int, overrides) -> Dict[str, Any]:
    # One-lane swarm: bit-identical to _frontier except for the backend
    # marker.  Used when a swarm-resolved admission group flushes with a
    # single query (narrow traffic inside the window).
    build_engine_config(overrides)
    from repro.core.swarm import run_swarm

    return frontier_result_to_dict(run_swarm(graph, [root])[0],
                                   backend="swarm")


def _scc(graph, root: int, overrides) -> Dict[str, Any]:
    from repro.apps import strongly_connected_components

    comp = strongly_connected_components(graph)
    return {
        "components": comp.tolist(),
        "n_components": int(comp.max()) + 1 if comp.size else 0,
    }


def _toposort(graph, root: int, overrides) -> Dict[str, Any]:
    from repro.apps import CycleFound, topological_sort

    try:
        order = topological_sort(graph)
    except CycleFound as exc:
        return {"order": None, "cycle": [int(v) for v in exc.cycle]}
    return {"order": order.tolist(), "cycle": None}


def _cycles(graph, root: int, overrides) -> Dict[str, Any]:
    from repro.apps import find_cycle
    from repro.validate.reference import serial_dfs

    traversal = serial_dfs(graph, root)
    cycle = find_cycle(graph, traversal)
    return {
        "has_cycle": cycle is not None,
        "cycle": [int(v) for v in cycle] if cycle is not None else None,
    }


def _biconnectivity(graph, root: int, overrides) -> Dict[str, Any]:
    from repro.apps import biconnectivity

    res = biconnectivity(graph)
    return {
        "articulation_points":
            np.flatnonzero(res.articulation_points).tolist(),
        "bridges": [[int(u), int(v)] for u, v in res.bridges.tolist()],
        "edge_component": res.edge_component.tolist(),
        "n_components": int(res.n_components),
    }


def _spanning(graph, root: int, overrides) -> Dict[str, Any]:
    from repro.apps import spanning_forest

    forest = spanning_forest(graph)
    return {
        "parent": forest.parent.tolist(),
        "component": forest.component.tolist(),
        "roots": [int(r) for r in forest.roots],
        "n_components": int(forest.n_components),
        "total_cycles": int(forest.total_cycles),
    }


_EXECUTORS = {
    "dfs": _dfs,
    "scc": _scc,
    "toposort": _toposort,
    "cycles": _cycles,
    "biconnectivity": _biconnectivity,
    "spanning": _spanning,
}
assert set(_EXECUTORS) == set(QUERY_OPS)


def execute_query(wire_graph, op: str, root: int,
                  overrides: Optional[Dict[str, Any]] = None,
                  backend: str = "dfs") -> Dict[str, Any]:
    """Execute one query; returns the result dict or an error marker.

    ``backend`` is the *resolved* engine family for ``dfs`` queries
    (``"dfs"``, ``"frontier"`` or ``"swarm"``) — callers route through
    :func:`repro.core.dispatch.choose_backend` first; this function
    just executes.  Non-DFS ops ignore it.
    """
    graph = _resolve(wire_graph)
    try:
        if root < 0 or root >= graph.n_vertices:
            raise ProtocolError(
                f"root {root} out of range for {graph.n_vertices} vertices")
        if op == "dfs" and backend == "frontier":
            return _frontier(graph, root, overrides)
        if op == "dfs" and backend == "swarm":
            return _swarm_single(graph, root, overrides)
        return _EXECUTORS[op](graph, root, overrides)
    except ReproError as exc:
        return _error_marker(exc)


# ---------------------------------------------------------------------------
# Batched DFS.
# ---------------------------------------------------------------------------

def _swarm_batch(graph, tasks: List[Tuple[int, Optional[Dict[str, Any]]]]
                 ) -> List[Dict[str, Any]]:
    """One lockstep swarm over every valid task; markers for the rest."""
    from repro.core.swarm import run_swarm

    out: List[Optional[Dict[str, Any]]] = [None] * len(tasks)
    lanes: List[int] = []
    for i, (root, ov) in enumerate(tasks):
        try:
            build_engine_config(ov)
            if root < 0 or root >= graph.n_vertices:
                raise ProtocolError(
                    f"root {root} out of range for "
                    f"{graph.n_vertices} vertices")
        except ReproError as exc:
            out[i] = _error_marker(exc)
        else:
            lanes.append(i)
    if lanes:
        try:
            results = run_swarm(graph, [tasks[i][0] for i in lanes])
        except ReproError as exc:
            for i in lanes:
                out[i] = _error_marker(exc)
        else:
            for i, res in zip(lanes, results):
                out[i] = frontier_result_to_dict(res, backend="swarm")
    return out


def _sharded(graph, root: int, overrides, shards: int,
             jobs: int) -> Dict[str, Any]:
    # Overrides are validated but don't parameterize the shard tier:
    # routing pins override-carrying queries to plain DFS before they
    # get here (a parameterized query asks for a specific simulation).
    build_engine_config(overrides)
    from repro.core.shard import run_sharded

    res = run_sharded(graph, root, k=shards, jobs=jobs)
    return sharded_result_to_dict(res)


def execute_dfs_batch(wire_graph,
                      tasks: List[Tuple[int, Optional[Dict[str, Any]]]],
                      backend: str = "dfs", shards: int = 0,
                      shard_jobs: int = 0) -> List[Dict[str, Any]]:
    """Execute ``[(root, config-overrides), ...]`` DFS queries, batched.

    Hive-eligible, mutually compatible tasks run as one
    :func:`repro.core.hive.run_hive` lockstep batch; anything else — and
    any batch a run aborts (the hive propagates one run's failure to its
    whole batch, but service responses must fail per *request*) — falls
    back to per-task scalar execution.  Per-task results are identical
    either way; the batch's width is reported by the daemon, not here.

    ``backend="frontier"`` answers every task with the frontier engine
    instead (admission never mixes backends in one batch, so the whole
    batch shares the resolved backend); frontier runs are per-root
    array passes with no lockstep analogue, so the batch is a loop.

    ``backend="swarm"`` runs every valid task as one lane of a single
    :func:`repro.core.swarm.run_swarm` lockstep batch — the frontier
    analogue of the hive path.  Tasks with a bad config or root settle
    as per-task error markers; the remaining lanes still swarm
    together, and each lane's payload is bit-identical to the
    single-root frontier answer (modulo the ``backend`` marker).

    ``backend="shard"`` answers every task with the sharded tier
    (:func:`repro.core.shard.run_sharded`, ``k = shards`` districts,
    ``jobs = shard_jobs`` concurrent district workers).  Shard batches
    always execute in the daemon process — the shard tier leases the
    worker pool itself, one engine per district, so shipping the batch
    to a pool worker would nest pools.
    """
    graph = _resolve(wire_graph)
    if backend == "frontier":
        return [execute_query(graph, "dfs", root, ov, backend="frontier")
                for root, ov in tasks]
    if backend == "swarm":
        return _swarm_batch(graph, tasks)
    if backend == "shard":
        out: List[Dict[str, Any]] = []
        for root, ov in tasks:
            try:
                if root < 0 or root >= graph.n_vertices:
                    raise ProtocolError(
                        f"root {root} out of range for "
                        f"{graph.n_vertices} vertices")
                out.append(_sharded(graph, root, ov, shards, shard_jobs))
            except ReproError as exc:
                out.append(_error_marker(exc))
        return out
    n = graph.n_vertices
    try:
        configs = [build_engine_config(ov) for _, ov in tasks]
    except ReproError:
        # At least one bad config: settle every task individually.
        return [execute_query(graph, "dfs", root, ov) for root, ov in tasks]
    roots_ok = all(0 <= root < n for root, _ in tasks)

    if len(tasks) > 1 and roots_ok:
        from repro.core.hive import hive_compatible, hive_eligible, run_hive

        base = configs[0]
        if (all(hive_eligible(c) for c in configs)
                and all(hive_compatible(base, c) for c in configs[1:])):
            try:
                results = run_hive(
                    graph, [(root, cfg)
                            for (root, _), cfg in zip(tasks, configs)])
                return [dfs_result_to_dict(r) for r in results]
            except ReproError:
                pass  # settle per task below for per-request errors

    return [execute_query(graph, "dfs", root, ov) for root, ov in tasks]
