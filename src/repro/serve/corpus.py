"""Resident graph corpus: load once, share everywhere.

The daemon's reason to exist is that every batch-mode entry point pays
engine + graph setup per invocation.  :class:`ResidentCorpus` pays it
exactly once: each graph is built (through the corpus disk cache where
applicable), fingerprinted, and exported into POSIX shared memory via
:mod:`repro.graphs.shm`, so worker processes attach the CSR arrays
zero-copy for the daemon's whole lifetime.

Where shared memory is unavailable — or a segment turns out to be
dangling at dispatch time (someone unlinked ``/dev/shm`` entries under
a live daemon) — the entry degrades to pickling the graph into worker
tasks: slower, never wrong.  The failure-path tests exercise exactly
this demotion.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Optional

import numpy as np

from repro.errors import ServeError
from repro.graphs.csr import CSRGraph

__all__ = [
    "graph_fingerprint",
    "ResidentGraph",
    "ResidentCorpus",
    "load_corpus",
    "CORPUS_SPECS",
]


def graph_fingerprint(graph: CSRGraph) -> str:
    """Content hash of a graph's CSR structure (name-independent)."""
    h = hashlib.sha256()
    h.update(b"directed" if graph.directed else b"undirected")
    h.update(np.ascontiguousarray(graph.row_ptr).tobytes())
    h.update(np.ascontiguousarray(graph.column_idx).tobytes())
    return h.hexdigest()[:16]


class ResidentGraph:
    """One resident graph: the in-process CSR plus its shm export."""

    __slots__ = ("name", "graph", "fingerprint", "shared", "shm_ok",
                 "_regime")

    def __init__(self, name: str, graph: CSRGraph, *, share: bool = True):
        self.name = name
        self.graph = graph
        self.fingerprint = graph_fingerprint(graph)
        self.shared = None
        self.shm_ok = False
        self._regime: Optional[str] = None
        if share:
            try:
                from repro.graphs.shm import export_csr

                self.shared = export_csr(graph)
                self.shm_ok = True
            except Exception:
                self.shared = None
                self.shm_ok = False

    def wire(self):
        """Worker-task payload: the shm spec when healthy, else the graph."""
        if self.shm_ok and self.shared is not None:
            return self.shared.spec
        return self.graph

    def demote(self) -> None:
        """Mark the shm export unusable (dangling segment observed)."""
        self.shm_ok = False

    def regime(self) -> str:
        """Structural regime (memoized — one BFS per resident lifetime).

        Backend dispatch keys on it per query; the graph is immutable
        (content changes re-register under a fresh entry), so computing
        it once per fingerprint is safe.
        """
        if self._regime is None:
            from repro.core.dispatch import graph_regime

            self._regime = graph_regime(self.graph)
        return self._regime

    def close(self) -> None:
        if self.shared is not None:
            self.shared.close()
            self.shared = None
        self.shm_ok = False

    def describe(self) -> Dict:
        return {
            "name": self.name,
            "fingerprint": self.fingerprint,
            "n_vertices": int(self.graph.n_vertices),
            "n_edges": int(self.graph.column_idx.shape[0]),
            "directed": bool(self.graph.directed),
            "shm": bool(self.shm_ok),
        }


class ResidentCorpus:
    """Named set of resident graphs owned by one daemon."""

    def __init__(self, *, share: bool = True):
        self._share = share
        self._entries: Dict[str, ResidentGraph] = {}

    def add(self, graph: CSRGraph, name: Optional[str] = None,
            ) -> ResidentGraph:
        """Register ``graph`` under ``name`` (default: its own name).

        Re-registering the same name with identical content is an
        idempotent no-op (returns the existing entry); different content
        replaces the entry — its fingerprint changes, so stale cache
        entries can never be served for the new graph.
        """
        name = name or graph.name
        if not name:
            raise ServeError("resident graphs need a non-empty name")
        existing = self._entries.get(name)
        if existing is not None:
            if existing.fingerprint == graph_fingerprint(graph):
                return existing
            existing.close()
        entry = ResidentGraph(name, graph, share=self._share)
        self._entries[name] = entry
        return entry

    def get(self, name: str) -> ResidentGraph:
        entry = self._entries.get(name)
        if entry is None:
            raise ServeError(
                f"unknown graph {name!r}; resident: {sorted(self._entries)}")
        return entry

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def names(self) -> List[str]:
        return sorted(self._entries)

    def describe(self) -> List[Dict]:
        return [self._entries[n].describe() for n in self.names()]

    def close(self) -> None:
        """Release every shm export (attached workers stay valid)."""
        for entry in self._entries.values():
            entry.close()


# ---------------------------------------------------------------------------
# Named corpus selectors for the CLI / load-test harness.
# ---------------------------------------------------------------------------

CORPUS_SPECS = ("micro", "representative", "demo")


def _micro_graphs() -> List[CSRGraph]:
    """The micro-bench sweep graphs (routed through the disk cache)."""
    from repro.bench.micro import MICRO_CASES

    out = []
    for name, build, _cfg in MICRO_CASES:
        g = build()
        if g.name != name:
            g = g.with_name(name)
        out.append((name, g))
    return out


def load_corpus(spec: str = "micro", *, share: bool = True,
                ) -> ResidentCorpus:
    """Build a resident corpus from a selector string.

    ``"micro"`` — the fixed micro-bench sweep graphs (the load-test
    corpus); ``"representative"`` — the Table-4 stand-ins from
    :mod:`repro.graphs.collections`; ``"demo"`` — four tiny graphs
    (one directed, one shallow-wide) for smoke tests; anything else —
    comma-separated collection names.
    """
    corpus = ResidentCorpus(share=share)
    if spec == "micro":
        for name, g in _micro_graphs():
            corpus.add(g, name)
    elif spec == "representative":
        from repro.graphs import collections as col

        for g in col.representative_graphs():
            corpus.add(g)
    elif spec == "demo":
        from repro.graphs import generators as gen

        corpus.add(gen.path_graph(64), "demo_path64")
        corpus.add(gen.binary_tree(6), "demo_tree6")
        corpus.add(gen.citation_graph(48, seed=7, symmetrize=False),
                   "demo_dag48")
        corpus.add(gen.star_mesh(6, leaves_per_hub=9, seed=7),
                   "demo_starmesh60")
    else:
        from repro.graphs import collections as col

        for name in [s.strip() for s in spec.split(",") if s.strip()]:
            corpus.add(col.load(name), name)
    if not len(corpus):
        raise ServeError(f"corpus selector {spec!r} produced no graphs")
    return corpus
