"""Per-graph result cache for the traversal service.

Keyed like :mod:`repro.graphs.diskcache`: a query's cache key is the
SHA-256 of its canonical JSON description — ``(op, root, engine-config
overrides, graph fingerprint, CACHE_VERSION)`` — so two requests hit the
same entry iff they are semantically the same query against the same
graph *content* (the fingerprint hashes the CSR arrays, not the name).

Each resident graph gets its own bounded LRU.  Entries store both the
decoded result dict and its serialized JSON, so the daemon's hit path
answers without re-serializing multi-thousand-entry parent arrays.

Disk spill is strictly best-effort, mirroring the corpus cache's
contract: a corrupt, truncated, or version-skewed cache file is
discarded and the service degrades to recomputation — never to an
error.  Writes are atomic (temp file + ``os.replace``) and batched
(every :data:`FLUSH_EVERY` inserts, plus a final flush at shutdown).
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from collections import OrderedDict
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Tuple

__all__ = [
    "CACHE_VERSION",
    "ENV_VAR",
    "FLUSH_EVERY",
    "default_cache_dir",
    "result_key",
    "GraphResultCache",
]

#: Bump when result payload semantics change for identical queries.
CACHE_VERSION = 1

ENV_VAR = "REPRO_SERVE_CACHE"

_DISABLED = ("", "0", "off", "none", "disabled")

#: Dirty-entry count at which the cache is spilled to disk.
FLUSH_EVERY = 64


def default_cache_dir() -> Optional[Path]:
    """Resolve the serve-cache directory, or None when disk is disabled.

    Same contract as :func:`repro.graphs.diskcache.cache_dir`:
    ``$REPRO_SERVE_CACHE`` overrides, disabled values turn disk spill
    off, default is a sibling of the corpus cache.
    """
    raw = os.environ.get(ENV_VAR)
    if raw is not None:
        if raw.strip().lower() in _DISABLED:
            return None
        return Path(raw).expanduser()
    return Path.home() / ".cache" / "repro-diggerbees" / "serve"


def result_key(op: str, root: int, config: Optional[Mapping],
               graph_fingerprint: str, backend: str = "dfs") -> str:
    """Deterministic cache key for one query (hex digest prefix).

    ``backend`` is the *resolved* engine family for DFS queries; only a
    non-default backend is keyed, so every existing DFS entry (memory or
    disk spill) stays addressable, while frontier answers can never be
    served to a DFS-backed daemon or vice versa.
    """
    payload: dict = {"op": op, "root": int(root),
                     "config": dict(config) if config else None,
                     "graph": graph_fingerprint, "version": CACHE_VERSION}
    if backend != "dfs":
        payload["backend"] = backend
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True, default=str).encode("utf-8")
    ).hexdigest()[:24]


class GraphResultCache:
    """Bounded LRU of served results for one resident graph."""

    def __init__(self, graph_name: str, graph_fingerprint: str,
                 directory: Optional[Path], max_entries: int = 4096):
        self.graph_name = graph_name
        self.graph_fingerprint = graph_fingerprint
        self.max_entries = int(max_entries)
        self.hits = 0
        self.misses = 0
        self._dirty = 0
        #: key -> (result dict, serialized JSON)
        self._entries: "OrderedDict[str, Tuple[Dict, str]]" = OrderedDict()
        self._path: Optional[Path] = None
        if directory is not None and self.max_entries > 0:
            stem = "".join(c if c.isalnum() or c in "-_" else "_"
                           for c in graph_name)
            self._path = (Path(directory)
                          / f"{stem}-{graph_fingerprint}.json")
            self._load()

    # ------------------------------------------------------------------
    def get(self, key: str) -> Optional[Tuple[Dict, str]]:
        """Look up ``key``; returns ``(result, raw_json)`` or None."""
        hit = self._entries.get(key)
        if hit is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return hit

    def put(self, key: str, result: Dict[str, Any],
            raw: Optional[str] = None) -> None:
        if self.max_entries <= 0 or key in self._entries:
            return
        if raw is None:
            raw = json.dumps(result, separators=(",", ":"))
        self._entries[key] = (result, raw)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
        self._dirty += 1
        if self._dirty >= FLUSH_EVERY:
            self.flush()

    def __len__(self) -> int:
        return len(self._entries)

    def stats(self) -> Dict[str, Any]:
        return {"entries": len(self._entries), "hits": self.hits,
                "misses": self.misses,
                "file": str(self._path) if self._path else None}

    # ------------------------------------------------------------------
    def _load(self) -> None:
        """Best-effort disk load; corrupt files are discarded."""
        path = self._path
        if path is None or not path.exists():
            return
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
            if (data.get("version") != CACHE_VERSION
                    or data.get("graph_fp") != self.graph_fingerprint
                    or not isinstance(data.get("entries"), dict)):
                raise ValueError("cache header mismatch")
            for key, result in data["entries"].items():
                if len(self._entries) >= self.max_entries:
                    break
                self._entries[str(key)] = (
                    result, json.dumps(result, separators=(",", ":")))
        except Exception:
            # Corrupt/partial/version-skewed: recompute rather than fail.
            self._entries.clear()
            try:
                path.unlink()
            except OSError:
                pass

    def flush(self) -> None:
        """Best-effort atomic spill of the current entries to disk."""
        path = self._path
        if path is None or not self._dirty:
            return
        self._dirty = 0
        body = ('{"version":%d,"graph_fp":%s,"entries":{%s}}' % (
            CACHE_VERSION,
            json.dumps(self.graph_fingerprint),
            ",".join(f"{json.dumps(k)}:{raw}"
                     for k, (_, raw) in self._entries.items()),
        ))
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=str(path.parent),
                                       suffix=".tmp.json")
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as f:
                    f.write(body)
                os.replace(tmp, path)
            finally:
                if os.path.exists(tmp):
                    os.unlink(tmp)
        except OSError:
            pass
