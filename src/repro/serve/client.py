"""Client library for the traversal service.

Two clients over the same wire protocol:

* :class:`AsyncServeClient` — asyncio, fully pipelined.  A background
  reader task correlates out-of-order responses to their callers by
  request ``id``, so any number of coroutines can have queries in
  flight on one connection (this is what makes daemon-side coalescing
  observable: concurrent awaits on the same connection land in one hive
  batch).  Cancellation-safe: a cancelled ``query`` abandons its waiter
  and the late response is dropped without disturbing other callers.
* :class:`SyncServeClient` — blocking convenience wrapper for scripts
  and the CLI; one request in flight at a time, but still tolerant of
  out-of-order delivery (responses for abandoned ids are skipped).
"""

from __future__ import annotations

import asyncio
import itertools
import os
import socket
import tempfile
from typing import Any, Dict, Optional

from repro.errors import ProtocolError, ServeError
from repro.serve.protocol import (
    MAX_LINE_BYTES,
    Request,
    Response,
    decode_response,
    encode_request,
)

__all__ = [
    "AsyncServeClient",
    "SyncServeClient",
    "default_socket_path",
    "SOCKET_ENV_VAR",
]

SOCKET_ENV_VAR = "REPRO_SERVE_SOCKET"


def default_socket_path() -> str:
    """Daemon socket path: ``$REPRO_SERVE_SOCKET`` or a tempdir default."""
    raw = os.environ.get(SOCKET_ENV_VAR)
    if raw:
        return raw
    return os.path.join(tempfile.gettempdir(),
                        f"repro-serve-{os.getuid()}.sock")


def _check(resp: Response) -> Response:
    if not resp.ok:
        err = resp.error or {}
        raise ServeError(
            f"daemon error [{err.get('type', '?')}]: "
            f"{err.get('message', 'unknown error')}")
    return resp


class AsyncServeClient:
    """Pipelined asyncio client; one connection, many in-flight queries."""

    def __init__(self) -> None:
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._reader_task: Optional[asyncio.Task] = None
        self._waiters: Dict[str, "asyncio.Future[Response]"] = {}
        self._ids = itertools.count(1)
        self._id_prefix = os.urandom(4).hex()
        self._closed = False
        self._conn_lost: Optional[BaseException] = None

    # ------------------------------------------------------------------
    async def connect(self, socket_path: Optional[str] = None,
                      ) -> "AsyncServeClient":
        path = socket_path or default_socket_path()
        try:
            self._reader, self._writer = await asyncio.open_unix_connection(
                path, limit=MAX_LINE_BYTES)
        except (ConnectionError, FileNotFoundError, OSError) as exc:
            raise ServeError(
                f"cannot connect to daemon at {path}: {exc}") from None
        self._reader_task = asyncio.ensure_future(self._read_loop())
        return self

    async def __aenter__(self) -> "AsyncServeClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    async def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except (asyncio.CancelledError, Exception):
                pass
        if self._writer is not None:
            try:
                self._writer.close()
                await self._writer.wait_closed()
            except Exception:
                pass
        self._fail_waiters(ServeError("client closed"))

    def _fail_waiters(self, exc: BaseException) -> None:
        waiters, self._waiters = self._waiters, {}
        for fut in waiters.values():
            if not fut.done():
                fut.set_exception(exc)

    async def _read_loop(self) -> None:
        assert self._reader is not None
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    raise ConnectionError("daemon closed the connection")
                if line.strip() == b"":
                    continue
                try:
                    resp = decode_response(line)
                except ProtocolError:
                    continue  # unparseable line; ids it held time out
                fut = self._waiters.pop(str(resp.id), None)
                if fut is not None and not fut.done():
                    fut.set_result(resp)
                # No waiter: the caller was cancelled; drop the line.
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            self._conn_lost = exc
            self._fail_waiters(
                ServeError(f"connection to daemon lost: {exc}"))

    # ------------------------------------------------------------------
    async def request(self, req: Request) -> Response:
        """Send one pre-built request and await its response."""
        if self._writer is None or self._closed:
            raise ServeError("client is not connected")
        if self._conn_lost is not None:
            raise ServeError(
                f"connection to daemon lost: {self._conn_lost}")
        req_id = str(req.id) if req.id is not None else (
            f"{self._id_prefix}-{next(self._ids)}")
        if req.id is None or str(req.id) != req_id:
            req = Request(op=req.op, id=req_id, graph=req.graph,
                          root=req.root, config=req.config,
                          payload=req.payload, no_cache=req.no_cache)
        fut: "asyncio.Future[Response]" = (
            asyncio.get_running_loop().create_future())
        self._waiters[req_id] = fut
        try:
            self._writer.write(encode_request(req))
            await self._writer.drain()
            return await fut
        finally:
            # Cancelled or failed: abandon the waiter so the reader
            # drops the (possibly still pending) response.
            self._waiters.pop(req_id, None)

    async def query(self, op: str, graph: str, *, root: int = 0,
                    config: Optional[Dict[str, Any]] = None,
                    no_cache: bool = False) -> Response:
        """Run one query; raises :class:`ServeError` on an error reply."""
        return _check(await self.request(Request(
            op=op, graph=graph, root=root, config=config,
            no_cache=no_cache)))

    async def dfs(self, graph: str, root: int = 0, *,
                  config: Optional[Dict[str, Any]] = None,
                  no_cache: bool = False) -> Response:
        return await self.query("dfs", graph, root=root, config=config,
                                no_cache=no_cache)

    async def ping(self) -> Response:
        return _check(await self.request(Request(op="ping")))

    async def status(self) -> Dict[str, Any]:
        return _check(await self.request(Request(op="status"))).result or {}

    async def graphs(self) -> Any:
        resp = _check(await self.request(Request(op="graphs")))
        return (resp.result or {}).get("graphs", [])

    async def add_graph(self, name: str, row_ptr, column_idx, *,
                        directed: bool = False) -> Response:
        payload = {
            "name": name,
            "row_ptr": [int(x) for x in row_ptr],
            "column_idx": [int(x) for x in column_idx],
            "directed": bool(directed),
        }
        return _check(await self.request(
            Request(op="add_graph", payload=payload)))

    async def shutdown(self) -> Response:
        return _check(await self.request(Request(op="shutdown")))


class SyncServeClient:
    """Blocking client: one request at a time over a plain socket."""

    def __init__(self, socket_path: Optional[str] = None,
                 timeout: Optional[float] = 30.0):
        self.socket_path = socket_path or default_socket_path()
        self._ids = itertools.count(1)
        self._id_prefix = os.urandom(4).hex()
        try:
            self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            self._sock.settimeout(timeout)
            self._sock.connect(self.socket_path)
        except (ConnectionError, FileNotFoundError, OSError) as exc:
            raise ServeError(
                f"cannot connect to daemon at {self.socket_path}: "
                f"{exc}") from None
        self._file = self._sock.makefile("rb")

    def __enter__(self) -> "SyncServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        try:
            self._file.close()
        except Exception:
            pass
        try:
            self._sock.close()
        except Exception:
            pass

    def request(self, req: Request) -> Response:
        req_id = str(req.id) if req.id is not None else (
            f"{self._id_prefix}-{next(self._ids)}")
        if req.id is None or str(req.id) != req_id:
            req = Request(op=req.op, id=req_id, graph=req.graph,
                          root=req.root, config=req.config,
                          payload=req.payload, no_cache=req.no_cache)
        try:
            self._sock.sendall(encode_request(req))
            while True:
                line = self._file.readline()
                if not line:
                    raise ServeError("daemon closed the connection")
                resp = decode_response(line)
                if str(resp.id) == req_id:
                    return resp
                # A response for an id this client abandoned; skip it.
        except socket.timeout:
            raise ServeError("daemon response timed out") from None
        except (ConnectionError, OSError) as exc:
            raise ServeError(f"connection to daemon lost: {exc}") from None

    def query(self, op: str, graph: str, *, root: int = 0,
              config: Optional[Dict[str, Any]] = None,
              no_cache: bool = False) -> Response:
        return _check(self.request(Request(
            op=op, graph=graph, root=root, config=config,
            no_cache=no_cache)))

    def ping(self) -> Response:
        return _check(self.request(Request(op="ping")))

    def add_graph(self, name: str, row_ptr, column_idx, *,
                  directed: bool = False) -> Response:
        payload = {
            "name": name,
            "row_ptr": [int(x) for x in row_ptr],
            "column_idx": [int(x) for x in column_idx],
            "directed": bool(directed),
        }
        return _check(self.request(Request(op="add_graph",
                                           payload=payload)))

    def status(self) -> Dict[str, Any]:
        return _check(self.request(Request(op="status"))).result or {}

    def graphs(self) -> Any:
        resp = _check(self.request(Request(op="graphs")))
        return (resp.result or {}).get("graphs", [])

    def shutdown(self) -> Response:
        return _check(self.request(Request(op="shutdown")))
