"""Admission policy: coalesce concurrent queries into hive batches.

The daemon's throughput comes from the same observation as the hive
engine's (:mod:`repro.core.hive`): B independent DFS runs over one graph
cost far less than B times one run when they advance in lockstep.  The
admission layer therefore holds each arriving DFS query briefly —
``batch_window`` seconds — hoping more queries for the same (graph,
engine-config) key arrive, and flushes the group to execution when the
window expires or ``max_batch`` fills, whichever comes first.

This module is the *pure* policy core: no clocks, no asyncio, no I/O.
Time enters exclusively through the ``now`` arguments, which makes every
interleaving of arrivals and timer fires exactly replayable — the
Hypothesis property suite (``tests/serve/test_admission.py``) drives it
with synthetic schedules and asserts the three contract properties:

* **bounds** — no batch exceeds ``max_batch``, and no item waits past
  ``opened + window`` once ``due()`` is polled at or after the deadline;
* **conservation** — every admitted item is flushed exactly once, in
  arrival order within its key, never mixed across keys;
* **invariance** — responses do not depend on the (jobs, batch, window)
  execution shape, because batching only ever groups hive-compatible
  work (the hive engine is bit-identical per run for any batch width).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Hashable, List, Optional, Tuple

__all__ = ["Batch", "BatchPolicy"]


@dataclass(frozen=True)
class Batch:
    """One flushed admission group, ready for execution."""

    key: Hashable          # grouping key: (graph, canonical engine config)
    items: Tuple[Any, ...]  # admitted items, in arrival order
    opened: float          # arrival time of the first item
    reason: str            # "full" | "window" | "drain"


@dataclass
class _Group:
    items: List[Any] = field(default_factory=list)
    opened: float = 0.0
    deadline: float = 0.0


class BatchPolicy:
    """Window/max-batch admission over keyed FIFO groups.

    ``window <= 0`` degenerates to immediate dispatch: every ``add``
    returns a singleton batch and nothing is ever held.
    """

    def __init__(self, window: float, max_batch: int):
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        self.window = float(window)
        self.max_batch = int(max_batch)
        self._groups: "OrderedDict[Hashable, _Group]" = OrderedDict()

    # ------------------------------------------------------------------
    def add(self, key: Hashable, item: Any, now: float) -> Optional[Batch]:
        """Admit one item; returns a batch iff one must flush *now*.

        A batch is returned when the group reaches ``max_batch`` (flush
        reason ``"full"``) or when coalescing is disabled
        (``window <= 0``, reason ``"window"`` with a zero-length wait).
        Otherwise the item parks in its group until :meth:`due` or
        :meth:`flush_all` releases it.
        """
        if self.window <= 0 or self.max_batch == 1:
            return Batch(key=key, items=(item,), opened=now,
                         reason="window" if self.window <= 0 else "full")
        group = self._groups.get(key)
        if group is None:
            group = _Group(opened=now, deadline=now + self.window)
            self._groups[key] = group
        group.items.append(item)
        if len(group.items) >= self.max_batch:
            del self._groups[key]
            return Batch(key=key, items=tuple(group.items),
                         opened=group.opened, reason="full")
        return None

    def due(self, now: float) -> List[Batch]:
        """Flush every group whose window has expired at ``now``."""
        out: List[Batch] = []
        for key in [k for k, g in self._groups.items() if g.deadline <= now]:
            group = self._groups.pop(key)
            out.append(Batch(key=key, items=tuple(group.items),
                             opened=group.opened, reason="window"))
        return out

    def flush_all(self, now: float = 0.0) -> List[Batch]:
        """Flush everything immediately (shutdown drain)."""
        out = [
            Batch(key=key, items=tuple(group.items), opened=group.opened,
                  reason="drain")
            for key, group in self._groups.items()
        ]
        self._groups.clear()
        return out

    # ------------------------------------------------------------------
    def next_deadline(self) -> Optional[float]:
        """Earliest pending window expiry, or None when nothing is held."""
        if not self._groups:
            return None
        return min(g.deadline for g in self._groups.values())

    def pending_count(self) -> int:
        return sum(len(g.items) for g in self._groups.values())

    def pending_groups(self) -> int:
        return len(self._groups)
