"""Traversal-as-a-service: a persistent query daemon over resident graphs.

The batch entry points (:mod:`repro.bench`, :mod:`repro.check`) pay
engine and graph setup on every invocation.  This package amortizes
that cost across a daemon lifetime: graphs are loaded once, exported to
POSIX shared memory, and queried over a newline-delimited JSON protocol
on a local socket.  Concurrent DFS queries against the same graph are
coalesced into hive lockstep batches (:mod:`repro.core.hive`), repeat
queries are answered from a per-graph result cache, and every response
is bit-identical to direct execution — the serve-diff oracle rung in
:mod:`repro.check` enforces exactly that.

Layout: :mod:`~repro.serve.protocol` (wire format and canonical result
payloads), :mod:`~repro.serve.admission` (pure window/max-batch
coalescing policy), :mod:`~repro.serve.corpus` (resident shm graph
set), :mod:`~repro.serve.cache` (per-graph result LRU with best-effort
disk spill), :mod:`~repro.serve.exec` (picklable query executors),
:mod:`~repro.serve.server` (the asyncio daemon),
:mod:`~repro.serve.client` (async + sync clients),
:mod:`~repro.serve.cli` (``python -m repro.serve``).
"""

from repro.serve.admission import Batch, BatchPolicy
from repro.serve.client import (
    AsyncServeClient,
    SyncServeClient,
    default_socket_path,
)
from repro.serve.corpus import ResidentCorpus, ResidentGraph, load_corpus
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    Request,
    Response,
    decode_request,
    decode_response,
    encode_request,
    encode_response,
)
from repro.serve.server import ServeServer

__all__ = [
    "PROTOCOL_VERSION",
    "Request",
    "Response",
    "encode_request",
    "decode_request",
    "encode_response",
    "decode_response",
    "Batch",
    "BatchPolicy",
    "ResidentCorpus",
    "ResidentGraph",
    "load_corpus",
    "ServeServer",
    "AsyncServeClient",
    "SyncServeClient",
    "default_socket_path",
]
