"""Wire protocol of the traversal service: newline-delimited JSON.

One request per line, one response per line, UTF-8, over a local
stream socket.  Requests carry a client-chosen ``id`` that the matching
response echoes; responses may arrive out of request order (the daemon
answers cache hits immediately while batched queries are still in
flight), so pipelining clients must correlate by ``id``.

Request fields
--------------
``op``        one of :data:`OPS` (required)
``id``        opaque correlation token (any JSON scalar; echoed back)
``graph``     resident graph name (query ops)
``root``      source vertex for rooted ops (``dfs``, ``cycles``)
``config``    :class:`~repro.core.config.DiggerBeesConfig` field
              overrides for ``dfs`` (dict; omitted = daemon default)
``payload``   op-specific extras (``add_graph`` carries the CSR arrays)
``no_cache``  bypass the result cache for this request

Response fields
---------------
``id``/``op``    echoed from the request
``ok``           True on success
``result``       op result payload (see the ``*_result`` helpers)
``error``        ``{"type", "message"}`` when ``ok`` is false
``cached``       result came from the per-graph memo
``batch``        lockstep width of the hive batch that computed it
``elapsed_ms``   daemon-side time from admission to completion

The result payloads are **canonical**: every array is a plain list,
counter dicts are string-keyed, and the encoders below are used by both
the daemon and the direct execution path, so "bit-identical to direct
execution" is a straight ``==`` on the decoded payloads (the serve-diff
oracle rung and the load-test ``--verify`` mode both rely on this).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

import numpy as np

from repro.errors import ProtocolError

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_LINE_BYTES",
    "QUERY_OPS",
    "CONTROL_OPS",
    "OPS",
    "ROOTED_OPS",
    "Request",
    "Response",
    "encode_request",
    "decode_request",
    "encode_response",
    "encode_response_with_raw_result",
    "decode_response",
    "error_response",
    "dfs_result_to_dict",
    "frontier_result_to_dict",
    "sharded_result_to_dict",
    "counters_to_wire",
]

PROTOCOL_VERSION = 1

#: Hard cap on one protocol line; longer lines indicate a broken client
#: (or an attempt to feed the daemon an absurd graph) and are rejected.
MAX_LINE_BYTES = 64 * 1024 * 1024

QUERY_OPS = ("dfs", "scc", "toposort", "cycles", "biconnectivity",
             "spanning")
CONTROL_OPS = ("status", "graphs", "add_graph", "ping", "shutdown")
OPS = QUERY_OPS + CONTROL_OPS

#: Query ops whose result depends on the ``root`` field.
ROOTED_OPS = ("dfs", "cycles")


@dataclass(frozen=True)
class Request:
    """One decoded client request."""

    op: str
    id: Any = None
    graph: Optional[str] = None
    root: int = 0
    config: Optional[Dict[str, Any]] = None
    payload: Optional[Dict[str, Any]] = None
    no_cache: bool = False

    def __post_init__(self) -> None:
        if self.op not in OPS:
            raise ProtocolError(f"unknown op {self.op!r}; known: {OPS}")
        if self.op in QUERY_OPS and not self.graph:
            raise ProtocolError(f"op {self.op!r} requires a graph name")
        if not isinstance(self.root, int) or isinstance(self.root, bool):
            raise ProtocolError(f"root must be an integer, got {self.root!r}")
        if self.config is not None and not isinstance(self.config, dict):
            raise ProtocolError("config must be an object of "
                                "DiggerBeesConfig overrides")
        if self.payload is not None and not isinstance(self.payload, dict):
            raise ProtocolError("payload must be an object")


@dataclass(frozen=True)
class Response:
    """One decoded daemon response."""

    op: str
    id: Any = None
    ok: bool = True
    result: Optional[Dict[str, Any]] = None
    error: Optional[Dict[str, str]] = None
    cached: bool = False
    batch: int = 1
    elapsed_ms: float = 0.0


_REQUEST_KEYS = ("op", "id", "graph", "root", "config", "payload",
                 "no_cache")
_RESPONSE_KEYS = ("op", "id", "ok", "result", "error", "cached", "batch",
                  "elapsed_ms")


def encode_request(req: Request) -> bytes:
    d: Dict[str, Any] = {"op": req.op}
    if req.id is not None:
        d["id"] = req.id
    if req.graph is not None:
        d["graph"] = req.graph
    if req.root:
        d["root"] = req.root
    if req.config is not None:
        d["config"] = req.config
    if req.payload is not None:
        d["payload"] = req.payload
    if req.no_cache:
        d["no_cache"] = True
    return (json.dumps(d, separators=(",", ":")) + "\n").encode("utf-8")


def _decode_line(line: bytes, what: str) -> Dict[str, Any]:
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError(f"{what} line exceeds {MAX_LINE_BYTES} bytes")
    try:
        data = json.loads(line.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"malformed {what} line: {exc}") from None
    if not isinstance(data, dict):
        raise ProtocolError(f"{what} must be a JSON object, "
                            f"got {type(data).__name__}")
    return data


def decode_request(line: bytes) -> Request:
    data = _decode_line(line, "request")
    if "op" not in data:
        raise ProtocolError("request is missing 'op'")
    unknown = set(data) - set(_REQUEST_KEYS)
    if unknown:
        raise ProtocolError(f"unknown request field(s) {sorted(unknown)}")
    try:
        return Request(**data)
    except TypeError as exc:
        raise ProtocolError(f"bad request: {exc}") from None


def encode_response(resp: Response) -> bytes:
    d: Dict[str, Any] = {"op": resp.op, "id": resp.id, "ok": resp.ok}
    if resp.ok:
        d["result"] = resp.result
    else:
        d["error"] = resp.error
    d["cached"] = resp.cached
    d["batch"] = resp.batch
    d["elapsed_ms"] = resp.elapsed_ms
    return (json.dumps(d, separators=(",", ":")) + "\n").encode("utf-8")


def encode_response_with_raw_result(resp: Response, raw_result: str) -> bytes:
    """Encode a success response around an already-serialized result.

    The daemon memoizes the JSON serialization of each cached result so
    a cache hit does not re-``dumps`` a multi-thousand-entry parent list
    per request — at load-test rates that serialization dominates the
    hit path.  Produces byte-compatible output with
    :func:`encode_response` (the protocol tests assert it).
    """
    head = json.dumps({"op": resp.op, "id": resp.id},
                      separators=(",", ":"))[:-1]
    tail = json.dumps({"cached": resp.cached, "batch": resp.batch,
                       "elapsed_ms": resp.elapsed_ms},
                      separators=(",", ":"))[1:]
    return (head + ',"ok":true,"result":' + raw_result + "," +
            tail + "\n").encode("utf-8")


def decode_response(line: bytes) -> Response:
    data = _decode_line(line, "response")
    unknown = set(data) - set(_RESPONSE_KEYS)
    if unknown:
        raise ProtocolError(f"unknown response field(s) {sorted(unknown)}")
    if "op" not in data or "ok" not in data:
        raise ProtocolError("response is missing 'op'/'ok'")
    return Response(**data)


def error_response(req: Optional[Request], exc: BaseException, *,
                   op: str = "?", req_id: Any = None) -> Response:
    """Build the error response for ``exc`` (request may be undecodable)."""
    if req is not None:
        op, req_id = req.op, req.id
    return Response(op=op, id=req_id, ok=False,
                    error={"type": type(exc).__name__,
                           "message": str(exc)})


# ---------------------------------------------------------------------------
# Canonical result payloads.
# ---------------------------------------------------------------------------

def counters_to_wire(counters) -> Dict[str, Any]:
    """JSON-safe, canonical form of a :class:`~repro.sim.trace.SimCounters`.

    Dict-valued counters get string keys (JSON objects cannot key on
    ints or tuples); scalar counters stay ints.  Both the daemon and the
    serve-diff oracle canonicalize through this function, so equality of
    the wire forms is equality of the counters.
    """
    out: Dict[str, Any] = {}
    for k, v in vars(counters).items():
        if isinstance(v, dict):
            out[k] = {_dict_key(dk): int(dv) for dk, dv in sorted(v.items())}
        else:
            out[k] = int(v)
    return out


def _dict_key(k) -> str:
    if isinstance(k, tuple):
        return ",".join(str(int(x)) for x in k)
    return str(int(k))


def dfs_result_to_dict(res) -> Dict[str, Any]:
    """Canonical payload of one :class:`DiggerBeesResult`.

    ``visited`` is sent sparse (indices of visited vertices) — dense
    bool lists would dominate the payload on mostly-unreachable graphs —
    together with ``n_vertices`` so the dense array is recoverable.
    """
    t = res.traversal
    return {
        "n_vertices": int(t.parent.shape[0]),
        "root": int(t.root),
        "parent": [int(p) for p in t.parent.tolist()],
        "visited": np.flatnonzero(t.visited).tolist(),
        "n_visited": int(t.n_visited),
        "edges_traversed": int(t.edges_traversed),
        "cycles": int(res.cycles),
        "steps": int(res.engine.steps),
        "counters": counters_to_wire(res.counters),
    }


def sharded_result_to_dict(res) -> Dict[str, Any]:
    """Canonical payload of one :class:`~repro.core.shard.ShardedResult`.

    Shares the DFS payload keys (sparse ``visited``, dense ``parent``,
    modeled ``cycles``/``steps``, wire counters) and adds the shard-tier
    extras: a ``backend`` marker, the district count, and the number of
    message-passing rounds.  The traversal portion is the canonical
    sharded merge — reachable set bit-identical to the unsharded engine,
    parent the deterministic min-parent tree — so the payload is a pure
    function of (graph, root) for any ``shards``/``jobs``; only
    ``cycles``/``rounds``/counters carry the protocol's modeled cost,
    which is why the shard tier gets its own result-cache key.
    """
    t = res.traversal
    return {
        "n_vertices": int(t.parent.shape[0]),
        "root": int(t.root),
        "parent": [int(p) for p in t.parent.tolist()],
        "visited": np.flatnonzero(t.visited).tolist(),
        "n_visited": int(t.n_visited),
        "edges_traversed": int(t.edges_traversed),
        "cycles": int(res.cycles),
        "steps": int(res.engine.steps),
        "counters": counters_to_wire(res.counters),
        "backend": "shard",
        "shards": int(res.k),
        "rounds": int(res.n_rounds),
    }


def frontier_result_to_dict(res, backend: str = "frontier"
                            ) -> Dict[str, Any]:
    """Canonical payload of one :class:`~repro.core.frontier.FrontierResult`.

    Shares the traversal keys with :func:`dfs_result_to_dict` (sparse
    ``visited``, dense ``parent``); instead of simulated cycles/steps it
    carries the frontier engine's level profile, plus a ``backend``
    marker so clients can tell which engine family answered — the swarm
    tier passes ``backend="swarm"`` (its lanes are bit-identical to
    single-root frontier runs, so everything except the marker matches).
    The payload is a pure function of the graph and root (the
    min-parent tie-break is deterministic), so it caches and replays
    like any DFS payload.
    """
    t = res.traversal
    return {
        "n_vertices": int(t.parent.shape[0]),
        "root": int(t.root),
        "parent": [int(p) for p in t.parent.tolist()],
        "visited": np.flatnonzero(t.visited).tolist(),
        "n_visited": int(t.n_visited),
        "edges_traversed": int(t.edges_traversed),
        "backend": backend,
        "n_levels": int(res.n_levels),
        "pushes": int(res.pushes),
        "pulls": int(res.pulls),
    }
