"""The traversal daemon: an asyncio query server over a resident corpus.

Architecture (one process, one event loop):

* **Connections** — each client speaks newline-delimited JSON over a
  local (Unix-domain) stream socket.  Requests are admitted as they
  arrive; responses are written as results complete, so a connection
  may receive them out of request order (clients correlate by ``id``).
* **Admission** — DFS queries are grouped by (graph, canonical engine
  config, resolved backend) in a
  :class:`~repro.serve.admission.BatchPolicy`; a group
  flushes to execution when its ``batch_window`` expires or it reaches
  ``max_batch``.  Identical in-flight queries additionally coalesce
  into one execution ("single-flight"), so a thundering herd of the
  same query costs one simulation.
* **Execution** — flushed batches run through
  :func:`repro.serve.exec.execute_dfs_batch` (hive lockstep where
  eligible) either in-process (``jobs = 0``) or on the persistent
  worker pool of :mod:`repro.bench.harness` with zero-copy shm graph
  hand-off.  Infrastructure failures degrade stepwise — broken pool ->
  fresh pool -> pickled graph -> in-process — and every demotion is
  counted in ``stats``; a query is answered wrong never, slower at
  worst.
* **Caching** — results are memoized per graph
  (:mod:`repro.serve.cache`), keyed by (op, root, config, graph
  fingerprint, resolved backend); hits are answered inline on the
  event loop from the pre-serialized JSON.
* **Shutdown** — stops accepting, flushes every admission group,
  drains in-flight executions (bounded by ``drain_timeout``), spills
  caches, then closes.  Client disconnects never cancel executions
  their batch-mates are waiting on; the orphaned responses are dropped.
"""

from __future__ import annotations

import asyncio
import json
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, List, Optional, Tuple

from repro.core.config import SHARD_MIN_VERTICES, ServeConfig
from repro.errors import ProtocolError, ReproError, ServeError
from repro.serve.admission import Batch, BatchPolicy
from repro.serve.cache import (
    GraphResultCache,
    default_cache_dir,
    result_key,
)
from repro.serve.corpus import ResidentCorpus, ResidentGraph
from repro.serve.exec import ERROR_KEY, execute_dfs_batch, execute_query
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    QUERY_OPS,
    MAX_LINE_BYTES,
    Request,
    Response,
    decode_request,
    encode_response,
    encode_response_with_raw_result,
    error_response,
)

__all__ = ["ServeServer", "ServerStats"]


class ServerStats:
    """Monotonic daemon counters, surfaced by the ``status`` op."""

    FIELDS = (
        "connections", "requests", "responses", "errors",
        "cache_hits", "cache_misses", "coalesced",
        "batches", "batched_queries", "hive_batches",
        "backend_dfs", "backend_frontier", "backend_swarm",
        "backend_shard",
        "pool_broken", "shm_fallbacks", "inline_fallbacks",
        "dropped_responses", "protocol_errors",
    )

    def __init__(self) -> None:
        for f in self.FIELDS:
            setattr(self, f, 0)

    def bump(self, field: str, by: int = 1) -> None:
        setattr(self, field, getattr(self, field) + by)

    def snapshot(self) -> Dict[str, int]:
        return {f: getattr(self, f) for f in self.FIELDS}


class _PendingQuery:
    """One admitted query waiting for its result."""

    __slots__ = ("request", "key", "future", "admitted", "backend")

    def __init__(self, request: Request, key: str,
                 future: "asyncio.Future", admitted: float,
                 backend: str = "dfs"):
        self.request = request
        self.key = key          # cache key (single-flight identity)
        self.future = future    # resolves to (result, raw, batch_width)
        self.admitted = admitted
        self.backend = backend  # resolved engine family (dfs queries)


def _canonical_config(overrides: Optional[Dict[str, Any]]) -> str:
    return json.dumps(overrides or {}, sort_keys=True,
                      separators=(",", ":"))


class ServeServer:
    """One daemon instance.  Not thread-safe; owned by one event loop."""

    def __init__(self, corpus: ResidentCorpus,
                 config: Optional[ServeConfig] = None):
        self.corpus = corpus
        self.config = config or ServeConfig()
        self.policy = BatchPolicy(self.config.batch_window,
                                  self.config.max_batch)
        self.stats = ServerStats()
        self.started_at = time.time()
        self._caches: Dict[str, GraphResultCache] = {}
        self._cache_dir = self._resolve_cache_dir()
        self._inflight_keys: Dict[Tuple[str, str], List[_PendingQuery]] = {}
        self._exec_tasks: "set[asyncio.Task]" = set()
        self._server: Optional[asyncio.AbstractServer] = None
        # Dedicated bounded executor for jobs=0 execution: the default
        # loop executor spawns ~cpu+4 threads, and that many GIL-bound
        # simulations starve the event loop (cache hits stall behind
        # compute).  Two workers keep misses flowing while the loop
        # retains enough GIL share to answer hits at full rate.
        self._thread_exec: Optional[ThreadPoolExecutor] = None
        self._flusher: Optional[asyncio.Task] = None
        self._wake = asyncio.Event()
        self._accepting = False
        self._closing = False
        self._shutdown_done = asyncio.Event()
        self.socket_path: Optional[str] = None

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------

    async def start(self, socket_path: str) -> None:
        """Bind the Unix socket and start accepting clients."""
        if self._server is not None:
            raise ServeError("server already started")
        self.socket_path = socket_path
        self._accepting = True
        self._server = await asyncio.start_unix_server(
            self._on_connection, path=socket_path,
            limit=MAX_LINE_BYTES)
        self._flusher = asyncio.ensure_future(self._flush_loop())

    async def serve_until_shutdown(self) -> None:
        """Block until a ``shutdown`` request (or :meth:`stop`) lands."""
        await self._shutdown_done.wait()

    async def stop(self, *, drain: bool = True) -> None:
        """Stop accepting, drain in-flight work, release resources."""
        if self._closing:
            await self._shutdown_done.wait()
            return
        self._closing = True
        self._accepting = False
        if self._server is not None:
            self._server.close()
        # Flush every held admission group so queued queries complete.
        for batch in self.policy.flush_all():
            self._launch_batch(batch)
        if drain and self._exec_tasks:
            await asyncio.wait(set(self._exec_tasks),
                               timeout=self.config.drain_timeout)
        if self._flusher is not None:
            self._flusher.cancel()
            try:
                await self._flusher
            except (asyncio.CancelledError, Exception):
                pass
        if self._server is not None:
            try:
                await self._server.wait_closed()
            except Exception:
                pass
        for cache in self._caches.values():
            cache.flush()
        if self._thread_exec is not None:
            self._thread_exec.shutdown(wait=False)
        self._shutdown_done.set()

    def _resolve_cache_dir(self):
        raw = self.config.cache_dir
        if raw is None:
            return default_cache_dir()
        if raw.strip().lower() in ("", "0", "off", "none", "disabled"):
            return None
        from pathlib import Path

        return Path(raw).expanduser()

    def _cache_for(self, entry: ResidentGraph) -> GraphResultCache:
        cache = self._caches.get(entry.name)
        if cache is None or cache.graph_fingerprint != entry.fingerprint:
            cache = GraphResultCache(entry.name, entry.fingerprint,
                                     self._cache_dir,
                                     self.config.cache_entries)
            self._caches[entry.name] = cache
        return cache

    # ------------------------------------------------------------------
    # Connection handling.
    # ------------------------------------------------------------------

    async def _on_connection(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        self.stats.bump("connections")
        write_lock = asyncio.Lock()
        conn_tasks: "set[asyncio.Task]" = set()
        try:
            while self._accepting:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    await self._send(writer, write_lock, encode_response(
                        error_response(None, ProtocolError(
                            f"request line exceeds {MAX_LINE_BYTES} B"))))
                    break
                except (ConnectionError, OSError):
                    break
                if not line:
                    break  # client closed its write side
                if line.strip() == b"":
                    continue
                task = asyncio.ensure_future(
                    self._serve_line(line, writer, write_lock))
                conn_tasks.add(task)
                task.add_done_callback(conn_tasks.discard)
        except asyncio.CancelledError:
            pass  # loop teardown; fall through to the cleanup below
        finally:
            # Let already-admitted requests finish writing; new reads stop.
            # A cancellation landing inside this cleanup must not leak out:
            # the task would finish cancelled and asyncio's stream callback
            # logs that as a spurious error at loop teardown.
            try:
                if conn_tasks:
                    await asyncio.gather(*conn_tasks, return_exceptions=True)
                writer.close()
                await writer.wait_closed()
            except (Exception, asyncio.CancelledError):
                pass

    async def _send(self, writer: asyncio.StreamWriter,
                    write_lock: asyncio.Lock, payload: bytes) -> None:
        """Write one response line; a dead client just drops the line."""
        try:
            async with write_lock:
                writer.write(payload)
                await writer.drain()
            self.stats.bump("responses")
        except (ConnectionError, RuntimeError, OSError):
            self.stats.bump("dropped_responses")

    async def _serve_line(self, line: bytes, writer: asyncio.StreamWriter,
                          write_lock: asyncio.Lock) -> None:
        self.stats.bump("requests")
        try:
            req = decode_request(line)
        except ProtocolError as exc:
            self.stats.bump("protocol_errors")
            # Best-effort id recovery so the client can correlate.
            req_id = None
            try:
                req_id = json.loads(line.decode("utf-8", "replace")).get("id")
            except Exception:
                pass
            await self._send(writer, write_lock, encode_response(
                error_response(None, exc, req_id=req_id)))
            return
        try:
            payload = await self._dispatch(req)
        except asyncio.CancelledError:
            raise
        except ReproError as exc:
            self.stats.bump("errors")
            payload = encode_response(error_response(req, exc))
        except Exception as exc:  # daemon must survive anything
            self.stats.bump("errors")
            payload = encode_response(error_response(req, exc))
        if payload is not None:
            await self._send(writer, write_lock, payload)

    # ------------------------------------------------------------------
    # Request dispatch.
    # ------------------------------------------------------------------

    async def _dispatch(self, req: Request) -> Optional[bytes]:
        if req.op in QUERY_OPS:
            return await self._dispatch_query(req)
        if req.op == "ping":
            return encode_response(Response(
                op="ping", id=req.id,
                result={"pong": True, "version": PROTOCOL_VERSION}))
        if req.op == "status":
            return encode_response(Response(
                op="status", id=req.id, result=self._status()))
        if req.op == "graphs":
            return encode_response(Response(
                op="graphs", id=req.id,
                result={"graphs": self.corpus.describe()}))
        if req.op == "add_graph":
            return encode_response(Response(
                op="add_graph", id=req.id,
                result=self._add_graph(req)))
        if req.op == "shutdown":
            asyncio.ensure_future(self.stop())
            return encode_response(Response(
                op="shutdown", id=req.id, result={"stopping": True}))
        raise ProtocolError(f"unhandled op {req.op!r}")

    def _status(self) -> Dict[str, Any]:
        return {
            "version": PROTOCOL_VERSION,
            "uptime_seconds": time.time() - self.started_at,
            "graphs": self.corpus.names(),
            "config": {
                "batch_window": self.config.batch_window,
                "max_batch": self.config.max_batch,
                "jobs": self.config.jobs,
                "cache_entries": self.config.cache_entries,
                "backend": self.config.backend,
                "shards": self.config.shards,
            },
            "pending": self.policy.pending_count(),
            "inflight_batches": len(self._exec_tasks),
            "stats": self.stats.snapshot(),
            "caches": {n: c.stats() for n, c in self._caches.items()},
        }

    def _add_graph(self, req: Request) -> Dict[str, Any]:
        from repro.graphs.csr import CSRGraph
        import numpy as np

        p = req.payload or {}
        missing = {"name", "row_ptr", "column_idx"} - set(p)
        if missing:
            raise ProtocolError(
                f"add_graph payload missing {sorted(missing)}")
        try:
            graph = CSRGraph(
                row_ptr=np.asarray(p["row_ptr"], dtype=np.int64),
                column_idx=np.asarray(p["column_idx"], dtype=np.int64),
                directed=bool(p.get("directed", False)),
                name=str(p["name"]),
            )
        except (ReproError, ValueError, TypeError) as exc:
            raise ProtocolError(f"bad add_graph payload: {exc}") from None
        entry = self.corpus.add(graph, str(p["name"]))
        return {"added": entry.name, "fingerprint": entry.fingerprint,
                "n_vertices": int(graph.n_vertices)}

    # ------------------------------------------------------------------
    # Query path: cache -> single-flight -> admission -> execution.
    # ------------------------------------------------------------------

    def _resolve_backend(self, entry: ResidentGraph, req: Request) -> str:
        """Resolved engine family for one DFS query (deterministic).

        Pure function of (knob, graph regime, overrides, admission
        width, calibration artifact), so cache keys and single-flight
        identity stay stable across repeats.  The regime BFS only runs
        under ``backend="auto"`` (and is memoized per resident graph);
        forced knobs never pay it.  ``batch_hint`` is the admission
        window's ``max_batch`` — the coalescing the daemon *can* do —
        which is what makes the swarm tier auto-eligible on shallow
        graphs: swarm-resolved queries form their own admission groups
        and flush as one lockstep batch.
        """
        from repro.core.dispatch import choose_backend

        regime = (entry.regime()
                  if self.config.backend == "auto" else None)
        backend = choose_backend(entry.graph,
                                 requested=self.config.backend,
                                 regime=regime,
                                 overrides=req.config,
                                 batch_hint=self.config.max_batch).backend
        # Shard-tier promotion: with the knob on, override-free DFS
        # queries on large graphs go to the sharded execution tier.
        # Parameterized queries ask for a specific single-engine
        # simulation and small graphs don't amortize the round barrier
        # (SHARD_MIN_VERTICES), so both stay on plain DFS.
        if (backend == "dfs" and self.config.shards >= 2
                and not req.config
                and entry.graph.n_vertices >= SHARD_MIN_VERTICES):
            return "shard"
        return backend

    async def _dispatch_query(self, req: Request) -> bytes:
        loop = asyncio.get_running_loop()
        t0 = loop.time()
        entry = self.corpus.get(req.graph)          # ServeError if unknown
        backend = "dfs"
        if req.op == "dfs":
            # Validate overrides up front: a malformed config must fail
            # its own request, not the batch it would have joined.
            from repro.serve.exec import build_engine_config

            build_engine_config(req.config)
            backend = self._resolve_backend(entry, req)
        # Shard payloads carry k-dependent modeled cost (cycles, rounds,
        # counters), so the district count is part of the key — a live
        # reconfiguration to a different k must not replay k-stale
        # payloads.
        key_backend = (f"shard:{self.config.shards}"
                       if backend == "shard" else backend)
        key = result_key(req.op, req.root, req.config, entry.fingerprint,
                         key_backend)
        cache = self._cache_for(entry)

        if not req.no_cache:
            hit = cache.get(key)
            if hit is not None:
                self.stats.bump("cache_hits")
                result, raw = hit
                return encode_response_with_raw_result(
                    Response(op=req.op, id=req.id, cached=True,
                             elapsed_ms=_ms(loop.time() - t0)), raw)
            self.stats.bump("cache_misses")

            # Single-flight: identical query already executing -> wait
            # on its future instead of re-admitting.
            flight_key = (entry.name, key)
            waiters = self._inflight_keys.get(flight_key)
            if waiters is not None:
                self.stats.bump("coalesced")
                pending = _PendingQuery(req, key, loop.create_future(), t0,
                                        backend)
                waiters.append(pending)
                return await self._await_pending(pending, t0)

        pending = _PendingQuery(req, key, loop.create_future(), t0, backend)
        if not req.no_cache:
            self._inflight_keys[(entry.name, key)] = [pending]

        if req.op == "dfs":
            # The resolved backend is part of the admission identity so
            # one flushed batch is always backend-homogeneous (a single
            # auto daemon never mixes engines within a batch anyway —
            # the decision is per graph — but a forced knob must not
            # merge with a differently-keyed group after a live
            # reconfiguration).
            admission_key = (entry.name, _canonical_config(req.config),
                             bool(req.no_cache), backend)
            batch = self.policy.add(admission_key,
                                    (entry, pending), loop.time())
            if batch is not None:
                self._launch_batch(batch)
            else:
                self._wake.set()   # flusher recomputes its deadline
        else:
            self._launch_batch(Batch(
                key=(entry.name, req.op), items=((entry, pending),),
                opened=t0, reason="app"))
        return await self._await_pending(pending, t0)

    async def _await_pending(self, pending: _PendingQuery,
                             t0: float) -> bytes:
        loop = asyncio.get_running_loop()
        result, raw, width = await pending.future
        elapsed = _ms(loop.time() - t0)
        req = pending.request
        if ERROR_KEY in result:
            self.stats.bump("errors")
            return encode_response(Response(
                op=req.op, id=req.id, ok=False,
                error=dict(result[ERROR_KEY]), batch=width,
                elapsed_ms=elapsed))
        return encode_response_with_raw_result(
            Response(op=req.op, id=req.id, batch=width,
                     elapsed_ms=elapsed), raw)

    # ------------------------------------------------------------------
    # Batch execution.
    # ------------------------------------------------------------------

    def _launch_batch(self, batch: Batch) -> None:
        task = asyncio.ensure_future(self._run_batch(batch))
        self._exec_tasks.add(task)
        task.add_done_callback(self._exec_tasks.discard)
        self.stats.bump("batches")
        self.stats.bump("batched_queries", len(batch.items))
        if len(batch.items) > 1:
            self.stats.bump("hive_batches")

    async def _run_batch(self, batch: Batch) -> None:
        entry: ResidentGraph = batch.items[0][0]
        pendings: List[_PendingQuery] = [p for _, p in batch.items]
        width = len(pendings)
        try:
            if pendings[0].request.op == "dfs":
                tasks = [(p.request.root, p.request.config)
                         for p in pendings]
                backend = pendings[0].backend  # admission-homogeneous
                self.stats.bump(f"backend_{backend}", width)
                if backend == "shard":
                    # Always in the daemon process: the shard tier
                    # leases the worker pool itself (one engine per
                    # district), so shipping it to a pool worker would
                    # nest pools.
                    results = await self._execute_inline(
                        execute_dfs_batch, entry, tasks, "shard",
                        self.config.shards, max(1, self.config.jobs))
                else:
                    results = await self._execute(
                        execute_dfs_batch, entry, tasks, backend)
            else:
                req = pendings[0].request
                results = [await self._execute(
                    execute_query, entry, req.op, req.root, req.config)]
        except asyncio.CancelledError:
            for p in pendings:
                if not p.future.done():
                    p.future.cancel()
            raise
        except Exception as exc:   # infrastructure failure after fallbacks
            marker = {ERROR_KEY: {"type": type(exc).__name__,
                                  "message": str(exc)}}
            self._settle(entry, pendings, [marker] * width, width)
            return
        self._settle(entry, pendings, results, width)

    def _settle(self, entry: ResidentGraph,
                pendings: List[_PendingQuery],
                results: List[Dict[str, Any]], width: int) -> None:
        cache = self._cache_for(entry)
        for pending, result in zip(pendings, results):
            ok = ERROR_KEY not in result
            raw = (json.dumps(result, separators=(",", ":"))
                   if ok else "")
            waiters: List[_PendingQuery] = []
            if not pending.request.no_cache:
                if ok:
                    cache.put(pending.key, result, raw)
                # Resolve the single-flight group (leader is member 0);
                # no_cache queries never own a group, so they must not
                # pop one that a cached-path leader is still executing.
                flight_key = (entry.name, pending.key)
                waiters = self._inflight_keys.pop(flight_key, None) or []
            group = [pending] + [w for w in waiters if w is not pending]
            for member in group:
                if not member.future.done():
                    member.future.set_result((result, raw, width))

    async def _execute(self, fn, entry: ResidentGraph, *args):
        """Run ``fn(graph, *args)`` at the configured execution tier.

        Degradation ladder for ``jobs >= 1``: healthy pool with shm spec
        -> (pool broke) one fresh pool -> (shm dangling) pickled graph
        -> in-process.  Query-level errors are *results* (markers) and
        never trigger demotion.
        """
        loop = asyncio.get_running_loop()
        jobs = self.config.jobs
        if jobs >= 1:
            from concurrent.futures.process import BrokenProcessPool
            from repro.bench import harness

            wire = entry.wire()
            for attempt in range(2):
                handle = harness.lease_pool(jobs)
                try:
                    fut = handle.executor.submit(fn, wire, *args)
                    out = await asyncio.wrap_future(fut)
                except BrokenProcessPool:
                    harness.release_pool(handle, broken=True)
                    self.stats.bump("pool_broken")
                    continue
                except (FileNotFoundError, OSError):
                    # Dangling shm segment: demote this graph to pickle
                    # hand-off and retry on the same (healthy) pool.
                    harness.release_pool(handle)
                    if entry.shm_ok:
                        entry.demote()
                        self.stats.bump("shm_fallbacks")
                        wire = entry.wire()
                        continue
                    break
                else:
                    harness.release_pool(handle)
                    return out
            self.stats.bump("inline_fallbacks")
        return await self._execute_inline(fn, entry, *args)

    async def _execute_inline(self, fn, entry: ResidentGraph, *args):
        """Run ``fn(graph, *args)`` on the daemon's bounded thread pool."""
        loop = asyncio.get_running_loop()
        if self._thread_exec is None:
            self._thread_exec = ThreadPoolExecutor(
                max_workers=2, thread_name_prefix="serve-exec")
        return await loop.run_in_executor(
            self._thread_exec, fn, entry.graph, *args)

    # ------------------------------------------------------------------
    # Window flusher.
    # ------------------------------------------------------------------

    async def _flush_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while not self._closing:
            deadline = self.policy.next_deadline()
            timeout = (None if deadline is None
                       else max(0.0, deadline - loop.time()))
            try:
                await asyncio.wait_for(self._wake.wait(), timeout)
            except asyncio.TimeoutError:
                pass
            self._wake.clear()
            for batch in self.policy.due(loop.time()):
                self._launch_batch(batch)


def _ms(seconds: float) -> float:
    return round(seconds * 1000.0, 3)
