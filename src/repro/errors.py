"""Exception hierarchy for the ``repro`` package.

All errors raised by the library derive from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class GraphFormatError(ReproError):
    """Raised when a graph file or in-memory structure is malformed."""


class GraphConstructionError(ReproError):
    """Raised when a generator is given inconsistent parameters."""


class SimulationError(ReproError):
    """Raised when the execution simulator reaches an inconsistent state.

    This always indicates a bug in an algorithm implementation (e.g. a
    stack underflow, a lost stack entry, or a vertex visited twice); the
    simulator is deterministic, so these are reproducible.
    """


class DeadlockError(SimulationError):
    """Raised when no warp can make progress but work remains pending."""


class StackOverflowError(SimulationError):
    """Raised when a simulated stack exceeds its configured capacity.

    For the two-level stack this should be impossible by construction
    (``cold_size`` is sized to ``nv / nw`` plus slack); seeing it means the
    flush/refill logic is broken.
    """


class MemoryLimitExceeded(ReproError):
    """Raised when an algorithm's simulated footprint exceeds device memory.

    NVG-DFS's path-tracking design is memory hungry; the paper reports it
    failing on 44/234 graphs.  We model the footprint explicitly and raise
    this error to reproduce that failure mode.
    """

    def __init__(self, required_bytes: int, available_bytes: int, detail: str = ""):
        self.required_bytes = int(required_bytes)
        self.available_bytes = int(available_bytes)
        msg = (
            f"simulated memory footprint {required_bytes / 2**30:.2f} GiB exceeds "
            f"device capacity {available_bytes / 2**30:.2f} GiB"
        )
        if detail:
            msg += f" ({detail})"
        super().__init__(msg)


class ValidationError(ReproError):
    """Raised when an algorithm output fails a correctness check.

    Carries optional structured ``details`` so callers (and regression
    tests) can assert on *what* failed rather than string-matching the
    message.  Validators populate well-known keys:

    * ``check`` — short identifier of the failing check
      (e.g. ``"visited_mismatch"``, ``"tree_edge_missing"``);
    * ``missing`` / ``extra`` — full vertex lists for visited-set
      mismatches (reachable-but-unvisited / visited-but-unreachable);
    * check-specific scalars such as ``vertex``, ``parent``, ``root``.
    """

    def __init__(self, message: str = "", **details):
        super().__init__(message)
        self.details = details

    @property
    def check(self):
        """The failing check's identifier (None for legacy raisers)."""
        return self.details.get("check")


class InvariantViolation(SimulationError):
    """Raised by the ``repro.check`` invariant monitor at the exact event
    that broke a steal-protocol invariant (lost/duplicated node, CAS
    linearizability breach, flush/publish conservation failure).

    A subclass of :class:`SimulationError` because a violated invariant
    always means the simulated protocol itself is buggy; the simulator is
    deterministic, so the failure reproduces from the same seed.
    """


class BenchmarkError(ReproError):
    """Raised when the benchmark harness is misconfigured."""


class ServeError(ReproError):
    """Raised by the traversal service (:mod:`repro.serve`).

    Covers daemon-side misconfiguration (unknown graph, unusable corpus)
    and client-side transport failures (connection refused, daemon went
    away mid-request).  Query *execution* failures are never raised out
    of the daemon: they travel back to the client as structured error
    responses so one bad query cannot take the service down.
    """


class ProtocolError(ServeError):
    """Raised when a serve request or response line is malformed.

    The daemon answers a malformed line with an error response (when it
    can still attribute an ``id`` to it) and keeps the connection open;
    the client raises this directly.
    """
