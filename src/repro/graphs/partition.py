"""Balanced k-way graph partitioning with cut minimization.

The sharded execution tier (:mod:`repro.core.shard`) lifts the paper's
inter-block steal protocol one level up: a CSR graph is split into ``k``
balanced *districts*, each district runs its own engine, and cut edges
become the inter-partition communication channel.  The partitioner here
supplies that split.  It is pure NumPy, deterministic under ``seed``,
and optimizes the two quantities the sharded tier cares about:

* **edge-cut fraction** — the share of stored arcs that cross district
  boundaries.  Every cut arc is a potential message in the round
  protocol, so fewer cut arcs means fewer synchronization barriers do
  real work.
* **balance factor** — ``max district size / (n / k)``.  The round
  protocol's makespan is the *maximum* district time per round, so an
  oversized district serializes the whole shard set.

Algorithm (all phases deterministic under ``seed``):

1. **Seeding** — a double-sweep BFS finds a peripheral vertex, then
   farthest-point traversal picks ``k`` mutually distant seeds (ties
   broken by smallest vertex id).
2. **Balanced region growing** — multi-source BFS; each wave, districts
   claim unlabelled frontier neighbours smallest-district-first, capped
   at ``ceil(n/k)`` so no district can swallow the graph.  Starved
   vertices (walled off by full districts) join the smallest adjacent
   district; disconnected leftovers round-robin onto the smallest
   districts.
3. **Boundary refinement** — Hess-style label-improvement passes: a
   boundary vertex moves to the neighbouring district with the highest
   connectivity gain, provided both districts stay inside the balance
   envelope.  Gains are recomputed against current labels at apply
   time, so a pass never applies a stale move.

The result is a :class:`PartitionedCSR`: per-district induced subgraphs
(local vertex ids), halo/cut tables mapping every outgoing cut arc to
``(dst_district, dst_local)``, and the quality metrics above.  Quality
is surfaced through :func:`repro.graphs.properties.profile_graph` via
``partition_k=...``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.errors import GraphFormatError
from repro.graphs.csr import CSRGraph, from_edges
from repro.utils.rng import RngLike, make_rng

__all__ = [
    "District",
    "PartitionedCSR",
    "partition_graph",
    "partition_labels",
    "partition_quality",
]

_IDX = np.int64


# ----------------------------------------------------------------------
# Label assignment
# ----------------------------------------------------------------------
def _symmetric_edges(graph: CSRGraph) -> np.ndarray:
    """Undirected view of the arc set: union of arcs and their reverses.

    Labelling quality wants symmetric connectivity even for digraphs (a
    cut arc costs a message no matter its direction); self-loops never
    affect the cut so they are dropped.  Deduplication runs on a packed
    ``src * n + dst`` key — identical (lexicographically sorted) rows to
    ``np.unique(axis=0)`` without its row-wise sort.
    """
    edges = graph.edge_array()
    n = graph.n_vertices
    if edges.size == 0:
        return edges.reshape(0, 2)
    both = np.vstack([edges, edges[:, ::-1]])
    both = both[both[:, 0] != both[:, 1]]
    key = _uniq(both[:, 0] * n + both[:, 1])
    return np.column_stack([key // n, key % n])


def _uniq(a: np.ndarray) -> np.ndarray:
    """Sorted unique via an explicit sort + run-length mask.

    ``np.unique`` routes integer input through a hash table whose
    constant factor dominates the partitioner's per-level frontier
    dedups (thousands of calls); a plain sort is several times faster
    at every size that matters here and returns the same sorted array.
    """
    if a.size == 0:
        return a
    a = np.sort(a)
    return a[np.concatenate(([True], a[1:] != a[:-1]))]


def _build_sym_csr(n: int,
                   edges: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """CSR adjacency (row_ptr, col) over the symmetric edge array, so
    frontier expansions touch only frontier adjacencies instead of
    rescanning the whole edge array once per BFS level."""
    rp = np.zeros(n + 1, dtype=_IDX)
    if edges.size == 0:
        return rp, np.empty(0, dtype=_IDX)
    src, dst = edges[:, 0], edges[:, 1]
    np.cumsum(np.bincount(src, minlength=n), out=rp[1:])
    return rp, dst[np.argsort(src, kind="stable")]


def _neighbors(rp: np.ndarray, ci: np.ndarray,
               frontier: np.ndarray) -> np.ndarray:
    """All adjacency entries of ``frontier`` in one vectorized gather."""
    starts = rp[frontier]
    deg = rp[frontier + 1] - starts
    total = int(deg.sum())
    if total == 0:
        return ci[:0]
    base = np.repeat(starts - np.concatenate(
        ([0], np.cumsum(deg)[:-1])), deg)
    return ci[base + np.arange(total, dtype=_IDX)]


def _sym_levels(n: int, rp: np.ndarray, ci: np.ndarray,
                sources: np.ndarray) -> np.ndarray:
    """Multi-source BFS hop distances over the symmetric CSR."""
    level = np.full(n, -1, dtype=_IDX)
    level[sources] = 0
    frontier = np.unique(sources)
    depth = 0
    while frontier.size:
        depth += 1
        cand = _neighbors(rp, ci, frontier)
        new = _uniq(cand[level[cand] < 0]) if cand.size else cand
        if new.size == 0:
            break
        level[new] = depth
        frontier = new
    return level


def _components(n: int, rp: np.ndarray, ci: np.ndarray) -> np.ndarray:
    """Connected-component id per vertex over the symmetric edge set.

    Degree-0 vertices are labelled without a BFS so graphs with many
    isolated vertices (RMAT tails) stay cheap.
    """
    comp = np.full(n, -1, dtype=_IDX)
    has_edge = rp[1:] > rp[:-1] if n else np.zeros(0, dtype=bool)
    cid = 0
    for v in range(n):
        if comp[v] >= 0:
            continue
        if not has_edge[v]:
            comp[v] = cid
        else:
            lv = _sym_levels(n, rp, ci, np.array([v], dtype=_IDX))
            comp[lv >= 0] = cid
        cid += 1
    return comp


def _seed_component(n: int, rp: np.ndarray, ci: np.ndarray,
                    member: np.ndarray, seats: int, start: int) -> list:
    """Farthest-point seeds inside one component (``member`` mask)."""
    big = np.iinfo(_IDX).max
    lv = _sym_levels(n, rp, ci, np.array([start], dtype=_IDX))
    lv = np.where(member, lv, -1)
    far = np.flatnonzero(lv == lv.max())
    seeds = [int(far[0])]
    mindist = _sym_levels(n, rp, ci, np.array(seeds, dtype=_IDX))
    while len(seeds) < seats:
        d = np.where(member, np.where(mindist < 0, big, mindist), -1)
        d[np.asarray(seeds, dtype=_IDX)] = -1
        nxt = int(np.argmax(d))  # ties -> smallest id
        seeds.append(nxt)
        lv = _sym_levels(n, rp, ci, np.array([nxt], dtype=_IDX))
        lv = np.where(lv < 0, big, lv)
        mindist = np.minimum(np.where(mindist < 0, big, mindist), lv)
    return seeds


def _pick_seeds(n: int, rp: np.ndarray, ci: np.ndarray, k: int,
                rng) -> np.ndarray:
    """Seed selection: seats per connected component proportional to
    size (largest-remainder), farthest-point placement inside each.

    Without the per-component allocation a disconnected graph puts all
    late seeds in tiny satellite components (they look "far" from every
    earlier seed), and the giant component collapses into one district.
    """
    comp = _components(n, rp, ci)
    counts = np.bincount(comp)
    n_comp = counts.size
    seats = np.floor(k * counts / n).astype(_IDX)
    seats = np.minimum(seats, counts)
    remainder = k * counts / n - seats
    # Hand leftover seats to the largest remainders (ties -> bigger
    # component, then smaller component id), capped at component size.
    order = np.lexsort((np.arange(n_comp), -counts, -remainder))
    i = 0
    while seats.sum() < k and i < 2 * n_comp:
        c = int(order[i % n_comp])
        if seats[c] < counts[c]:
            seats[c] += 1
        i += 1
    start = int(rng.integers(0, n))
    seeds: list = []
    for c in np.argsort(-counts, kind="stable"):
        if seats[c] == 0:
            continue
        member = comp == c
        local_start = start if member[start] else int(
            np.flatnonzero(member)[0])
        seeds.extend(_seed_component(n, rp, ci, member, int(seats[c]),
                                     local_start))
    return np.asarray(seeds[:k], dtype=_IDX)


def _grow_regions(n: int, rp: np.ndarray, ci: np.ndarray,
                  edges: np.ndarray, seeds: np.ndarray,
                  k: int) -> np.ndarray:
    """Capacity-limited multi-source BFS growing; returns labels."""
    labels = np.full(n, -1, dtype=_IDX)
    sizes = np.zeros(k, dtype=_IDX)
    cap = -(-n // k)  # ceil(n / k)
    frontiers = []
    for d, s in enumerate(seeds):
        labels[s] = d
        sizes[d] += 1
        frontiers.append(np.array([s], dtype=_IDX))
    src, dst = (edges[:, 0], edges[:, 1]) if edges.size else (
        np.empty(0, dtype=_IDX), np.empty(0, dtype=_IDX))
    n_unlabelled = n - len(seeds)
    progress = True
    while progress and n_unlabelled > 0:
        progress = False
        # Smallest district claims first so lagging regions catch up.
        for d in sorted(range(k), key=lambda i: (int(sizes[i]), i)):
            room = cap - int(sizes[d])
            if room <= 0 or frontiers[d].size == 0:
                continue
            cand = _neighbors(rp, ci, frontiers[d])
            cand = _uniq(cand[labels[cand] < 0]) if cand.size else cand
            take = cand[:room]
            frontiers[d] = take
            if take.size:
                labels[take] = d
                sizes[d] += take.size
                n_unlabelled -= take.size
                progress = True
    # Starved vertices: absorb into the smallest adjacent district,
    # one wave at a time so absorption stays breadth-first.  The live
    # boundary (labelled -> unlabelled arcs) is maintained incrementally
    # — a full-arc rescan per wave turns high-diameter graphs quadratic.
    if src.size:
        live = (labels[src] >= 0) & (labels[dst] < 0)
        a_src, a_dst = src[live], dst[live]
    else:
        a_src, a_dst = src, dst
    while a_src.size:
        cand_lab = labels[a_src]
        # Per vertex, adopt the adjacent district minimizing (size, id).
        key = sizes[cand_lab] * k + cand_lab
        best = np.full(n, np.iinfo(_IDX).max, dtype=_IDX)
        np.minimum.at(best, a_dst, key)
        touched = np.flatnonzero(best < np.iinfo(_IDX).max)
        adopted = best[touched] % k
        labels[touched] = adopted
        sizes += np.bincount(adopted, minlength=k)
        # Arcs out of freshly labelled vertices may open new boundary;
        # arcs whose target just got labelled leave it.
        a_src = np.concatenate([
            a_src, np.repeat(touched, rp[touched + 1] - rp[touched])])
        a_dst = np.concatenate([a_dst, _neighbors(rp, ci, touched)])
        keep = labels[a_dst] < 0
        a_src, a_dst = a_src[keep], a_dst[keep]
    # Disconnected leftovers: round-robin onto the smallest districts.
    for v in np.flatnonzero(labels < 0):
        d = int(np.lexsort((np.arange(k), sizes))[0])
        labels[v] = d
        sizes[d] += 1
    return labels


def _rebalance(n: int, edges: np.ndarray, labels: np.ndarray, k: int,
               max_size: int) -> np.ndarray:
    """Trim over-cap districts by batched boundary moves.

    The capped growing phase can still overflow: when a region is
    walled in by full districts, starved-segment absorption has nowhere
    else to put it.  This phase shaves each over-cap district by moving
    boundary vertices to the *smallest* adjacent district with room —
    batched per iteration (everything on the same receiving boundary
    moves together), looping because each move exposes new boundary.
    """
    if edges.size == 0 or k <= 1:
        return labels
    labels = labels.copy()
    sizes = np.bincount(labels, minlength=k).astype(_IDX)
    src, dst = edges[:, 0], edges[:, 1]
    for _ in range(n):  # every iteration moves >= 1 vertex or breaks
        if not np.any(sizes > max_size):
            break
        moved = False
        # Diffuse along the size gradient: every district (largest
        # first) sheds to its smallest strictly-smaller neighbour, so
        # overflow walled in by full districts still drains through
        # them toward distant slack (a pure over->under rule deadlocks
        # on chains).  Each move lowers sum(sizes^2), so this
        # terminates.  The boundary is scanned once per iteration (not
        # once per district); moves earlier in the same iteration are
        # filtered out at apply time, so sizes stay exact.
        lab_s, lab_d = labels[src], labels[dst]
        cross = lab_s != lab_d
        x_v, x_from, x_to = src[cross], lab_s[cross], lab_d[cross]
        for d in np.argsort(-sizes, kind="stable"):
            d = int(d)
            m = x_from == d
            if not np.any(m):
                continue
            cand_v, cand_to = x_v[m], x_to[m]
            still = labels[cand_v] == d
            cand_v, cand_to = cand_v[still], cand_to[still]
            smaller = sizes[cand_to] < sizes[d]
            if not np.any(smaller):
                continue
            cand_v, cand_to = cand_v[smaller], cand_to[smaller]
            to = int(cand_to[np.argmin(sizes[cand_to] * k + cand_to)])
            batch = _uniq(cand_v[cand_to == to])
            quota = max(1, int(sizes[d] - sizes[to]) // 2)
            batch = batch[:quota]
            labels[batch] = to
            sizes[d] -= batch.size
            sizes[to] += batch.size
            moved = True
        if not moved:
            break
    return labels


def _refine(n: int, edges: np.ndarray, labels: np.ndarray, k: int,
            passes: int, balance_slack: float) -> np.ndarray:
    """Hess-style boundary-improvement passes (gain > 0 moves only)."""
    if edges.size == 0 or k <= 1:
        return labels
    labels = labels.copy()
    sizes = np.bincount(labels, minlength=k).astype(_IDX)
    target = n / k
    max_size = int(math.ceil(target * (1.0 + balance_slack)))
    min_size = max(1, int(math.floor(target * (1.0 - balance_slack))))
    src, dst = edges[:, 0], edges[:, 1]
    # Per-vertex neighbour lists over the symmetric edge set, for exact
    # gain recomputation at apply time.
    order = np.argsort(src, kind="stable")
    nbr_ptr = np.zeros(n + 1, dtype=_IDX)
    np.cumsum(np.bincount(src, minlength=n), out=nbr_ptr[1:])
    nbr = dst[order]
    for _ in range(max(0, passes)):
        conn = np.bincount(src * k + labels[dst],
                           minlength=n * k).reshape(n, k).astype(_IDX)
        own = conn[np.arange(n), labels]
        masked = conn.copy()
        masked[np.arange(n), labels] = -1
        best = np.argmax(masked, axis=1)  # ties -> smallest district id
        gain = masked[np.arange(n), best] - own
        cand = np.flatnonzero(gain > 0)
        if cand.size == 0:
            break
        moved = 0
        # Highest-gain first; vertex id breaks ties deterministically.
        for v in cand[np.lexsort((cand, -gain[cand]))]:
            v = int(v)
            d_from, d_to = int(labels[v]), int(best[v])
            if sizes[d_to] >= max_size or sizes[d_from] <= min_size:
                continue
            # Re-count against *current* labels: earlier moves this pass
            # may have flipped neighbours, making the cached gain stale.
            nb = nbr[nbr_ptr[v]:nbr_ptr[v + 1]]
            counts = np.bincount(labels[nb], minlength=k)
            live = counts[d_to] - counts[d_from]
            if live <= 0:
                continue
            labels[v] = d_to
            sizes[d_from] -= 1
            sizes[d_to] += 1
            moved += 1
        if moved == 0:
            break
    return labels


def partition_labels(graph: CSRGraph, k: int, *, seed: RngLike = 0,
                     refine_passes: int = 4,
                     balance_slack: float = 0.10) -> np.ndarray:
    """District label per vertex (the raw assignment, no tables built)."""
    n = graph.n_vertices
    if k < 1:
        raise GraphFormatError(f"partition k must be >= 1, got {k}")
    if n == 0:
        return np.empty(0, dtype=_IDX)
    k = min(k, n)
    if k == 1:
        return np.zeros(n, dtype=_IDX)
    rng = make_rng(seed)
    edges = _symmetric_edges(graph)
    rp, ci = _build_sym_csr(n, edges)
    seeds = _pick_seeds(n, rp, ci, k, rng)
    labels = _grow_regions(n, rp, ci, edges, seeds, k)
    max_size = int(math.ceil((n / k) * (1.0 + balance_slack)))
    labels = _rebalance(n, edges, labels, k, max_size)
    return _refine(n, edges, labels, k, refine_passes, balance_slack)


def partition_quality(graph: CSRGraph, labels: np.ndarray) -> Dict:
    """Quality metrics of a label assignment on ``graph``.

    ``edge_cut_fraction`` counts *stored* arcs crossing districts (both
    directions of an undirected edge, matching ``n_edges`` semantics);
    ``balance_factor`` is ``max district size / (n / k)`` — 1.0 is
    perfect balance.
    """
    labels = np.asarray(labels, dtype=_IDX)
    n = graph.n_vertices
    if labels.shape != (n,):
        raise GraphFormatError(
            f"labels must have shape ({n},), got {labels.shape}")
    k = int(labels.max()) + 1 if n else 1
    edges = graph.edge_array()
    cut = int(np.sum(labels[edges[:, 0]] != labels[edges[:, 1]])) \
        if edges.size else 0
    sizes = np.bincount(labels, minlength=k) if n else np.zeros(k, dtype=_IDX)
    balance = float(sizes.max() / (n / k)) if n else 1.0
    return {
        "k": k,
        "n_cut_edges": cut,
        "edge_cut_fraction": (cut / graph.n_edges) if graph.n_edges else 0.0,
        "balance_factor": balance,
        "district_sizes": [int(s) for s in sizes],
    }


# ----------------------------------------------------------------------
# Partition product: districts + halo tables
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class District:
    """One shard: an induced subgraph plus its outgoing halo table.

    ``global_ids`` maps local vertex ``l`` to its global id (ascending,
    so sorted adjacency survives relabelling).  The cut table lists
    every stored arc leaving this district, sorted by ``(src_global,
    dst_global)``; ``cut_dst_district`` / ``cut_dst_local`` address the
    receiving side so the round protocol can deliver activations
    without touching global arrays.
    """

    index: int
    global_ids: np.ndarray
    subgraph: CSRGraph
    cut_src_local: np.ndarray
    cut_src_global: np.ndarray
    cut_dst_global: np.ndarray
    cut_dst_district: np.ndarray
    cut_dst_local: np.ndarray

    @property
    def n_vertices(self) -> int:
        return int(self.global_ids.size)

    @property
    def n_cut_edges(self) -> int:
        return int(self.cut_src_global.size)


@dataclass(frozen=True)
class PartitionedCSR:
    """A k-way partition of a CSR graph with halo/cut-edge tables."""

    graph: CSRGraph
    k: int
    seed: int
    labels: np.ndarray
    local_ids: np.ndarray  # global id -> local id inside its district
    districts: Tuple[District, ...]
    n_cut_edges: int
    edge_cut_fraction: float
    balance_factor: float
    meta: dict = field(default_factory=dict, compare=False)

    def quality(self) -> Dict:
        """The metrics dict (same shape as :func:`partition_quality`)."""
        return {
            "k": self.k,
            "n_cut_edges": self.n_cut_edges,
            "edge_cut_fraction": self.edge_cut_fraction,
            "balance_factor": self.balance_factor,
            "district_sizes": [d.n_vertices for d in self.districts],
        }

    def check_invariants(self) -> None:
        """Raise :class:`GraphFormatError` on any structural violation.

        Checked: every vertex in exactly one district; local ids round
        trip; internal + cut arcs conserve the global arc count; every
        cut arc appears in exactly one halo table with a correct
        receiving address.
        """
        n = self.graph.n_vertices
        seen = np.zeros(n, dtype=np.int64)
        for d in self.districts:
            seen[d.global_ids] += 1
            if not np.array_equal(self.local_ids[d.global_ids],
                                  np.arange(d.n_vertices)):
                raise GraphFormatError(
                    f"district {d.index}: local_ids do not round trip")
            if np.any(self.labels[d.global_ids] != d.index):
                raise GraphFormatError(
                    f"district {d.index}: labels disagree with membership")
        if n and not np.array_equal(seen, np.ones(n, dtype=np.int64)):
            bad = np.flatnonzero(seen != 1)
            raise GraphFormatError(
                f"vertices {bad[:8].tolist()} are in {seen[bad[0]]} "
                f"districts (want exactly 1)")
        internal = sum(d.subgraph.n_edges for d in self.districts)
        cut = sum(d.n_cut_edges for d in self.districts)
        if internal + cut != self.graph.n_edges:
            raise GraphFormatError(
                f"arc conservation violated: {internal} internal + {cut} "
                f"cut != {self.graph.n_edges} stored arcs")
        if cut != self.n_cut_edges:
            raise GraphFormatError(
                f"halo tables carry {cut} arcs, header says "
                f"{self.n_cut_edges}")
        for d in self.districts:
            if d.cut_src_global.size and np.any(
                    self.labels[d.cut_src_global] != d.index):
                raise GraphFormatError(
                    f"district {d.index}: cut arc sourced outside it")
            if np.any(d.cut_dst_district == d.index):
                raise GraphFormatError(
                    f"district {d.index}: cut arc landing inside itself")
            if d.cut_dst_global.size:
                if np.any(self.labels[d.cut_dst_global]
                          != d.cut_dst_district):
                    raise GraphFormatError(
                        f"district {d.index}: cut arc routed to the "
                        f"wrong district")
                if np.any(self.local_ids[d.cut_dst_global]
                          != d.cut_dst_local):
                    raise GraphFormatError(
                        f"district {d.index}: cut arc local address "
                        f"mismatch")


def partition_graph(graph: CSRGraph, k: int, *, seed: RngLike = 0,
                    refine_passes: int = 4,
                    balance_slack: float = 0.10) -> PartitionedCSR:
    """Partition ``graph`` into ``k`` balanced districts.

    Deterministic under ``seed``.  ``k`` is clamped to ``n_vertices``;
    ``k=1`` degenerates to the whole graph in one district (no cut).
    """
    labels = partition_labels(graph, k, seed=seed,
                              refine_passes=refine_passes,
                              balance_slack=balance_slack)
    n = graph.n_vertices
    k_eff = int(labels.max()) + 1 if n else 1
    local_ids = np.full(n, -1, dtype=_IDX)
    edges = graph.edge_array()
    e_src = edges[:, 0] if edges.size else np.empty(0, dtype=_IDX)
    e_dst = edges[:, 1] if edges.size else np.empty(0, dtype=_IDX)
    members = [np.flatnonzero(labels == d) for d in range(k_eff)]
    for gids in members:
        local_ids[gids] = np.arange(gids.size)
    districts = []
    for d in range(k_eff):
        gids = members[d]
        sub = graph.subgraph(gids).with_name(
            f"{graph.name or 'graph'}#d{d}", district=d)
        m = (labels[e_src] == d) & (labels[e_dst] != d) if edges.size \
            else np.zeros(0, dtype=bool)
        cs, cd = e_src[m], e_dst[m]
        order = np.lexsort((cd, cs))
        cs, cd = cs[order], cd[order]
        districts.append(District(
            index=d,
            global_ids=gids,
            subgraph=sub,
            cut_src_local=local_ids[cs],
            cut_src_global=cs,
            cut_dst_global=cd,
            cut_dst_district=labels[cd] if cd.size else cd,
            cut_dst_local=local_ids[cd],
        ))
    quality = partition_quality(graph, labels)
    part = PartitionedCSR(
        graph=graph,
        k=k_eff,
        seed=int(seed) if isinstance(seed, (int, np.integer)) else -1,
        labels=labels,
        local_ids=local_ids,
        districts=tuple(districts),
        n_cut_edges=quality["n_cut_edges"],
        edge_cut_fraction=quality["edge_cut_fraction"],
        balance_factor=quality["balance_factor"],
        meta={"requested_k": int(k), "refine_passes": int(refine_passes),
              "balance_slack": float(balance_slack)},
    )
    return part
