"""Named graph corpus mirroring the paper's dataset (scaled down).

The paper evaluates 234 graphs from DIMACS10 (151), SNAP (68) and LAW (15)
plus 12 "representative" graphs (Table 4).  This module provides:

* :data:`REPRESENTATIVE_SPECS` — stand-ins for the 12 Table-4 graphs, each
  built by the generator whose output matches the original's structural
  regime (road / mesh / rgg / bubbles / social / web / citation).
* :func:`build_corpus` — a multi-group sweep corpus for the Figure 5/7
  scatter experiments, spanning two orders of magnitude in edge count.
* :func:`load` / :func:`available` — name-based access with caching.

Sizes are scaled so a pure-Python event-driven simulator can traverse each
graph in seconds; the ``scale`` knob grows everything proportionally.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import GraphConstructionError
from repro.graphs import diskcache
from repro.graphs import generators as gen
from repro.graphs.csr import CSRGraph
from repro.utils.rng import derive_seed

__all__ = [
    "GraphSpec",
    "REPRESENTATIVE_SPECS",
    "REPRESENTATIVE_NAMES",
    "BREAKDOWN_NAMES",
    "GROUPS",
    "available",
    "load",
    "load_many",
    "representative_graphs",
    "breakdown_graphs",
    "build_corpus",
    "clear_cache",
]


@dataclass(frozen=True)
class GraphSpec:
    """Recipe for one named corpus graph."""

    name: str
    group: str          # dimacs10 | snap | law
    paper_analog: str   # original SuiteSparse graph this stands in for
    regime: str         # deep | mid | shallow
    builder: Callable[[int, int], CSRGraph]  # (scale, seed) -> graph

    def build(self, scale: int = 1, base_seed: int = 7) -> CSRGraph:
        seed = derive_seed(base_seed, "corpus", self.name, scale)
        # The raw builder output is disk-cached; metadata is re-applied
        # below so cache hits are indistinguishable from rebuilds.
        g = diskcache.cached_build(
            "corpus", self.name, {"scale": scale}, seed,
            lambda: self.builder(scale, seed),
        )
        return g.with_name(self.name, group=self.group,
                           paper_analog=self.paper_analog, regime_hint=self.regime)


def _spec(name, group, analog, regime, builder) -> GraphSpec:
    return GraphSpec(name=name, group=group, paper_analog=analog,
                     regime=regime, builder=builder)


def _giant(graph: CSRGraph) -> CSRGraph:
    """Largest connected component (R-MAT leaves isolated vertices)."""
    from repro.graphs.properties import largest_component

    sub, _ = largest_component(graph)
    return sub


# ---------------------------------------------------------------------------
# The 12 representative graphs of Table 4 (scaled stand-ins).
#
# Base sizes are chosen so ratios of |V| and |E| across graphs roughly track
# Table 4 (e.g. euro_osm is the biggest and sparsest; hollywood is the
# densest; social graphs have heavy-tailed degree), at ~1/3000 scale.
# ---------------------------------------------------------------------------

REPRESENTATIVE_SPECS: Tuple[GraphSpec, ...] = (
    _spec("euro_osm", "dimacs10", "europe_osm", "deep",
          lambda s, r: gen.road_network(9000 * s, seed=r)),
    _spec("delaunay", "dimacs10", "delaunay_n24", "deep",
          lambda s, r: gen.delaunay_mesh(5000 * s, seed=r)),
    _spec("rgg", "dimacs10", "rgg_n_2_24_s0", "deep",
          lambda s, r: gen.random_geometric(4500 * s, seed=r)),
    _spec("hugebubbles", "dimacs10", "hugebubbles-00020", "deep",
          lambda s, r: gen.bubble_mesh(220 * s, 28, seed=r)),
    _spec("auto", "dimacs10", "auto", "mid",
          lambda s, r: gen.grid3d(13 * s, 13, 13)),
    _spec("citation", "dimacs10", "citationCiteseer", "shallow",
          lambda s, r: gen.citation_graph(2600 * s, refs_per_paper=6, seed=r)),
    _spec("il2010", "dimacs10", "il2010", "deep",
          lambda s, r: gen.road_network(3800 * s, seed=r, extra_edge_fraction=0.04)),
    _spec("amazon", "snap", "amazon0302", "mid",
          lambda s, r: gen.co_purchase(2400 * s, seed=r)),
    _spec("google", "snap", "web-Google", "shallow",
          lambda s, r: gen.web_copy_model(2800 * s, out_degree=5, seed=r)),
    _spec("wiki", "snap", "wiki-Talk", "shallow",
          lambda s, r: gen.preferential_attachment(3200 * s, m=8, seed=r)),
    _spec("ljournal", "law", "ljournal-2008", "shallow",
          lambda s, r: gen.preferential_attachment(4200 * s, m=9, seed=r)),
    _spec("hollywood", "law", "hollywood-2009", "shallow",
          lambda s, r: _giant(gen.rmat(11, edge_factor=int(24 * s), seed=r))),
)

REPRESENTATIVE_NAMES: Tuple[str, ...] = tuple(s.name for s in REPRESENTATIVE_SPECS)

#: The six graphs of the breakdown / load-balance / sensitivity experiments
#: (paper Figures 8-10).
BREAKDOWN_NAMES: Tuple[str, ...] = (
    "euro_osm", "delaunay", "hugebubbles", "amazon", "google", "ljournal",
)

GROUPS: Dict[str, str] = {
    "dimacs10": "Benchmark graphs from the 10th DIMACS Implementation Challenge "
                "(clustering, numerical simulation, road networks)",
    "snap": "Real-world networks from the Stanford Network Analysis Platform "
            "(social, citation, web)",
    "law": "Large-scale web graphs from the Laboratory for Web Algorithmics",
}

_BY_NAME: Dict[str, GraphSpec] = {s.name: s for s in REPRESENTATIVE_SPECS}
_CACHE: Dict[Tuple[str, int, int], CSRGraph] = {}


def available() -> List[str]:
    """Names of all representative graphs."""
    return list(REPRESENTATIVE_NAMES)


def load(name: str, *, scale: int = 1, base_seed: int = 7) -> CSRGraph:
    """Load a named representative graph (cached per (name, scale, seed))."""
    if name not in _BY_NAME:
        raise GraphConstructionError(
            f"unknown graph {name!r}; available: {', '.join(REPRESENTATIVE_NAMES)}"
        )
    key = (name, scale, base_seed)
    if key not in _CACHE:
        _CACHE[key] = _BY_NAME[name].build(scale=scale, base_seed=base_seed)
    return _CACHE[key]


def load_many(names, *, scale: int = 1, base_seed: int = 7) -> List[CSRGraph]:
    """Load several named graphs."""
    return [load(n, scale=scale, base_seed=base_seed) for n in names]


def representative_graphs(*, scale: int = 1, base_seed: int = 7) -> List[CSRGraph]:
    """All 12 Table-4 stand-ins."""
    return load_many(REPRESENTATIVE_NAMES, scale=scale, base_seed=base_seed)


def breakdown_graphs(*, scale: int = 1, base_seed: int = 7) -> List[CSRGraph]:
    """The six graphs used by Figures 8-10."""
    return load_many(BREAKDOWN_NAMES, scale=scale, base_seed=base_seed)


def clear_cache() -> None:
    """Drop all cached corpus graphs (frees memory between experiments)."""
    _CACHE.clear()


# ---------------------------------------------------------------------------
# Sweep corpus for the Figure 5 / Figure 7 scatter plots.
# ---------------------------------------------------------------------------

def build_corpus(
    *,
    sizes: Optional[List[int]] = None,
    base_seed: int = 7,
) -> List[CSRGraph]:
    """Build the multi-group sweep corpus (default ~24 graphs).

    Mirrors the paper's 234-graph sweep at simulator scale: every size in
    ``sizes`` is instantiated for several structural families across the
    three groups, covering roughly two decades of edge counts.  The graphs
    come back sorted by edge count, matching Figure 5's x-axis.
    """
    sizes = sizes or [400, 1200, 3600, 9000]
    families: List[Tuple[str, str, Callable[[int, int], CSRGraph]]] = [
        ("road", "dimacs10", lambda n, r: gen.road_network(n, seed=r)),
        ("mesh", "dimacs10", lambda n, r: gen.delaunay_mesh(max(n, 8), seed=r)),
        ("bubbles", "dimacs10",
         lambda n, r: gen.bubble_mesh(max(2, n // 25), 25, seed=r)),
        ("social", "snap", lambda n, r: gen.preferential_attachment(n, m=6, seed=r)),
        ("copurchase", "snap", lambda n, r: gen.co_purchase(n, seed=r)),
        ("web", "law", lambda n, r: gen.web_copy_model(n, out_degree=6, seed=r)),
    ]
    corpus: List[CSRGraph] = []
    for size in sizes:
        for fam, group, builder in families:
            seed = derive_seed(base_seed, "sweep", fam, size)
            g = diskcache.cached_build(
                "sweep", f"{fam}_{size}", {"size": size}, seed,
                lambda b=builder, n=size, r=seed: b(n, r),
            )
            corpus.append(g.with_name(f"{fam}_{size}", group=group, family=fam))
    corpus.sort(key=lambda g: g.n_edges)
    return corpus
