"""Zero-copy CSR graph hand-off over POSIX shared memory.

The sweep fan-out (:mod:`repro.bench.harness`) runs many independent
``(method, graph, root)`` samples over a small set of graphs.  Pickling
a graph into every worker task costs one serialize + one deserialize +
one copy *per task*; for sweep workloads the graph payload dominates the
task payload by orders of magnitude.

:func:`export_csr` instead copies each distinct graph **once** into
named ``multiprocessing.shared_memory`` segments and returns a tiny
picklable *spec* (segment names + dtypes + lengths).  Workers
:func:`attach_csr` the spec and wrap NumPy arrays directly over the
shared buffers — no copy, no deserialization, and concurrent workers
map the same physical pages.  ``CSRGraph`` treats its arrays as
immutable, so sharing writable pages is safe by contract.

Lifecycle: the exporting (parent) process owns the segments and must
call :meth:`SharedCSR.close` after the batch completes — on Linux the
unlink removes the name while every already-attached mapping stays
valid, so workers holding cached graphs are unaffected.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.graphs.csr import CSRGraph

__all__ = ["SPEC_KEY", "SharedCSR", "export_csr", "attach_csr"]

#: Marker key identifying a shared-graph spec dict in a task payload.
SPEC_KEY = "__csr_shm__"


class SharedCSR:
    """Parent-side handle: the picklable spec plus the owned segments."""

    __slots__ = ("spec", "_segments", "_closed")

    def __init__(self, spec: dict, segments: list):
        self.spec = spec
        self._segments = segments
        self._closed = False

    def close(self) -> None:
        """Release the parent's mapping and unlink the segment names."""
        if self._closed:
            return
        self._closed = True
        for shm in self._segments:
            try:
                shm.close()
                shm.unlink()
            except OSError:  # pragma: no cover - already gone
                pass


def export_csr(graph: CSRGraph) -> SharedCSR:
    """Copy ``graph``'s arrays into shared memory; return the handle.

    Raises ``OSError`` where shared memory is unavailable (callers fall
    back to pickling the graph itself).
    """
    from multiprocessing import shared_memory

    segments = []
    spec_segments: List[Tuple[str, str, int]] = []
    try:
        for arr in (graph.row_ptr, graph.column_idx):
            # Zero-length segments are invalid; over-allocate one byte.
            shm = shared_memory.SharedMemory(
                create=True, size=max(1, arr.nbytes))
            segments.append(shm)
            if arr.nbytes:
                np.frombuffer(shm.buf, dtype=arr.dtype,
                              count=arr.size)[:] = arr
            spec_segments.append((shm.name, str(arr.dtype), int(arr.size)))
    except Exception:
        for shm in segments:
            try:
                shm.close()
                shm.unlink()
            except OSError:
                pass
        raise
    spec = {
        SPEC_KEY: True,
        "directed": graph.directed,
        "name": graph.name,
        "meta": dict(graph.meta),
        "segments": spec_segments,
    }
    return SharedCSR(spec, segments)


def attach_csr(spec: dict) -> Tuple[CSRGraph, list]:
    """Rebuild a :class:`CSRGraph` over the segments named in ``spec``.

    Returns ``(graph, segment_handles)``.  The caller must keep the
    handles referenced at least as long as the graph: the graph's arrays
    alias the mapped buffers, and a garbage-collected handle unmaps
    them.
    """
    from multiprocessing import shared_memory

    arrays = []
    handles = []
    for name, dtype, size in spec["segments"]:
        # Attaching re-registers the name with the resource tracker; under
        # the fork start method (Linux default) parent and workers share
        # one tracker process whose registry is a set, so the attach is a
        # no-op there and the parent's unlink clears the single entry —
        # no extra bookkeeping needed here.
        shm = shared_memory.SharedMemory(name=name)
        handles.append(shm)
        arrays.append(np.frombuffer(shm.buf, dtype=np.dtype(dtype),
                                    count=size))
    graph = CSRGraph(
        row_ptr=arrays[0],
        column_idx=arrays[1],
        directed=spec["directed"],
        name=spec["name"],
        meta=dict(spec["meta"]),
    )
    return graph, handles
