"""Disk cache for generated corpus graphs.

Benchmark sweeps (Figures 5-10) regenerate the same synthetic corpus on
every invocation; generation cost rivals simulation cost for the larger
sizes.  This module memoizes *raw builder output* to compressed ``.npz``
files keyed by ``(kind, name, params, seed, CACHE_VERSION)`` so repeated
runs skip regeneration entirely.

Contract
--------
* The cache stores only the CSR structure (``row_ptr``/``column_idx``,
  directedness, name) via :func:`repro.graphs.io.save_npz`; callers
  re-apply display metadata (``with_name``) after the cached build, so a
  cache hit is bit-for-bit equivalent to a rebuild for every simulation
  purpose.
* Writes are atomic (temp file + ``os.replace``), so concurrent sweep
  workers never observe a torn file.
* Corrupt or unreadable entries are discarded and rebuilt.
* Location: ``$REPRO_CORPUS_CACHE`` if set, else
  ``~/.cache/repro-diggerbees/corpus``.  Setting the variable to ``0``,
  ``off``, ``none`` or the empty string disables caching.
* Invalidation: bump :data:`CACHE_VERSION` when generator semantics
  change, or delete the directory (``clear_disk_cache``).
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Callable, Mapping, Optional

from repro.graphs.csr import CSRGraph
from repro.graphs.io import load_npz, save_npz

__all__ = [
    "CACHE_VERSION",
    "ENV_VAR",
    "cache_dir",
    "cache_path",
    "cached_build",
    "clear_disk_cache",
    "stats",
    "reset_stats",
]

#: Process-wide hit/miss tally for :func:`cached_build` (benchmark
#: reporting: the micro-sweep prints these so a cold corpus cache —
#: generation cost showing up in the phase timings — is visible).
_STATS = {"hits": 0, "misses": 0}


def stats() -> dict:
    """A copy of the current ``{"hits": .., "misses": ..}`` tally."""
    return dict(_STATS)


def reset_stats() -> None:
    _STATS["hits"] = 0
    _STATS["misses"] = 0

#: Bump when generator output changes for identical (params, seed).
CACHE_VERSION = 1

ENV_VAR = "REPRO_CORPUS_CACHE"

_DISABLED = ("", "0", "off", "none", "disabled")


def cache_dir() -> Optional[Path]:
    """Resolve the cache directory, or None when caching is disabled."""
    raw = os.environ.get(ENV_VAR)
    if raw is not None:
        if raw.strip().lower() in _DISABLED:
            return None
        return Path(raw).expanduser()
    return Path.home() / ".cache" / "repro-diggerbees" / "corpus"


def cache_path(kind: str, name: str, params: Mapping, seed: int) -> Optional[Path]:
    """Deterministic cache file path for one builder invocation."""
    d = cache_dir()
    if d is None:
        return None
    payload = json.dumps(
        {"kind": kind, "name": name, "params": dict(params),
         "seed": int(seed), "version": CACHE_VERSION},
        sort_keys=True, default=str,
    )
    digest = hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]
    stem = "".join(c if c.isalnum() or c in "-_" else "_"
                   for c in f"{kind}-{name}")
    return d / f"{stem}-{digest}.npz"


def cached_build(kind: str, name: str, params: Mapping, seed: int,
                 builder: Callable[[], CSRGraph]) -> CSRGraph:
    """Return the cached graph for this key, building (and caching) on miss.

    Caching is strictly best-effort: any I/O problem falls back to the
    builder so benchmarks never fail because of cache state.
    """
    path = cache_path(kind, name, params, seed)
    if path is None:
        _STATS["misses"] += 1
        return builder()
    if path.exists():
        try:
            graph = load_npz(path)
            _STATS["hits"] += 1
            return graph
        except Exception:
            # Corrupt/partial entry (e.g. version-skewed numpy): rebuild.
            try:
                path.unlink()
            except OSError:
                pass
    _STATS["misses"] += 1
    graph = builder()
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp.npz")
        os.close(fd)
        try:
            save_npz(graph, tmp)
            os.replace(tmp, path)
        finally:
            if os.path.exists(tmp):
                os.unlink(tmp)
    except OSError:
        pass
    return graph


def clear_disk_cache() -> int:
    """Delete every cached corpus file; returns the number removed."""
    d = cache_dir()
    if d is None or not d.exists():
        return 0
    removed = 0
    for f in d.glob("*.npz"):
        try:
            f.unlink()
            removed += 1
        except OSError:
            pass
    return removed
