"""Compressed Sparse Row (CSR) graph substrate.

This is the input format of the paper (Algorithm 1 reads ``row_ptr`` /
``column_idx`` directly) and the single graph representation used by every
algorithm in this repository.  The class is a thin, immutable wrapper over
two NumPy arrays plus convenience constructors, transforms, and integrity
checks.

Conventions
-----------
* Vertices are ``0 .. n_vertices-1``.
* ``row_ptr`` has length ``n_vertices + 1``; the neighbours of ``u`` are
  ``column_idx[row_ptr[u]:row_ptr[u+1]]``.
* For undirected graphs every edge is stored in both directions
  (``directed=False`` is a statement about symmetry, checked on demand).
* ``n_edges`` counts *stored* directed arcs, matching the paper's MTEPS
  denominator (traversed edges).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional, Sequence, Tuple

import numpy as np

from repro.errors import GraphFormatError

__all__ = ["CSRGraph", "from_edges", "from_adjacency"]

_INDEX_DTYPE = np.int64


@dataclass(frozen=True)
class CSRGraph:
    """An immutable graph in CSR form.

    Parameters
    ----------
    row_ptr:
        Offsets array, shape ``(n_vertices + 1,)``, nondecreasing,
        ``row_ptr[0] == 0`` and ``row_ptr[-1] == len(column_idx)``.
    column_idx:
        Neighbour array; values in ``[0, n_vertices)``.
    directed:
        Whether the arc set is to be interpreted as directed.  An
        undirected graph stores both arc directions.
    name:
        Optional label used in reports.
    """

    row_ptr: np.ndarray
    column_idx: np.ndarray
    directed: bool = False
    name: str = ""
    meta: dict = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        rp = np.ascontiguousarray(self.row_ptr, dtype=_INDEX_DTYPE)
        ci = np.ascontiguousarray(self.column_idx, dtype=_INDEX_DTYPE)
        object.__setattr__(self, "row_ptr", rp)
        object.__setattr__(self, "column_idx", ci)
        if rp.ndim != 1 or ci.ndim != 1:
            raise GraphFormatError("row_ptr and column_idx must be 1-D arrays")
        if rp.size == 0:
            raise GraphFormatError("row_ptr must have length >= 1")
        if rp[0] != 0:
            raise GraphFormatError(f"row_ptr[0] must be 0, got {rp[0]}")
        if rp[-1] != ci.size:
            raise GraphFormatError(
                f"row_ptr[-1]={rp[-1]} does not match len(column_idx)={ci.size}"
            )
        if np.any(np.diff(rp) < 0):
            raise GraphFormatError("row_ptr must be nondecreasing")
        n = rp.size - 1
        if ci.size and (ci.min() < 0 or ci.max() >= n):
            raise GraphFormatError(
                f"column_idx values must lie in [0, {n}), got range "
                f"[{ci.min()}, {ci.max()}]"
            )
        rp.setflags(write=False)
        ci.setflags(write=False)

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def n_vertices(self) -> int:
        """Number of vertices."""
        return self.row_ptr.size - 1

    @property
    def n_edges(self) -> int:
        """Number of stored directed arcs (2x undirected edge count)."""
        return self.column_idx.size

    @property
    def n_undirected_edges(self) -> int:
        """``n_edges / 2`` for symmetric graphs (rounded up for odd arcs)."""
        return (self.n_edges + 1) // 2 if not self.directed else self.n_edges

    def degree(self, u: Optional[int] = None) -> np.ndarray:
        """Out-degree of ``u``, or the full out-degree array if ``u`` is None."""
        if u is None:
            return np.diff(self.row_ptr)
        self._check_vertex(u)
        return self.row_ptr[u + 1] - self.row_ptr[u]

    def neighbors(self, u: int) -> np.ndarray:
        """Read-only view of ``u``'s neighbour list."""
        self._check_vertex(u)
        return self.column_idx[self.row_ptr[u]: self.row_ptr[u + 1]]

    def iter_edges(self) -> Iterator[Tuple[int, int]]:
        """Yield every stored arc ``(u, v)`` in CSR order."""
        rp = self.row_ptr
        ci = self.column_idx
        for u in range(self.n_vertices):
            for j in range(rp[u], rp[u + 1]):
                yield u, int(ci[j])

    def edge_array(self) -> np.ndarray:
        """All stored arcs as an ``(n_edges, 2)`` array (vectorized)."""
        src = np.repeat(np.arange(self.n_vertices, dtype=_INDEX_DTYPE), self.degree())
        return np.column_stack([src, self.column_idx])

    def has_edge(self, u: int, v: int) -> bool:
        """True if arc ``(u, v)`` is stored (binary search if sorted, scan otherwise)."""
        self._check_vertex(u)
        self._check_vertex(v)
        nbrs = self.neighbors(u)
        if self.meta.get("sorted_neighbors"):
            pos = np.searchsorted(nbrs, v)
            return bool(pos < nbrs.size and nbrs[pos] == v)
        return bool(np.any(nbrs == v))

    def _check_vertex(self, u: int) -> None:
        if not (0 <= u < self.n_vertices):
            raise GraphFormatError(f"vertex {u} out of range [0, {self.n_vertices})")

    def adjacency_lists(self) -> Tuple[list, list]:
        """Plain-list mirrors of ``(row_ptr, column_idx)``, memoized.

        The simulator's expand fast path scans Python lists instead of
        NumPy arrays (no per-read scalar boxing); the graph is immutable,
        so repeated runs over it — benchmark repeats, oracle cross-checks,
        parameter sweeps — share one conversion.
        """
        cached = self.__dict__.get("_adj_lists")
        if cached is None:
            cached = (self.row_ptr.tolist(), self.column_idx.tolist())
            object.__setattr__(self, "_adj_lists", cached)
        return cached

    # ------------------------------------------------------------------
    # Transforms (each returns a new CSRGraph)
    # ------------------------------------------------------------------
    def with_name(self, name: str, **meta) -> "CSRGraph":
        """Copy with a new name and extra metadata entries."""
        merged = dict(self.meta)
        merged.update(meta)
        return CSRGraph(self.row_ptr, self.column_idx, self.directed, name, merged)

    def sort_neighbors(self) -> "CSRGraph":
        """Sort each adjacency list ascending (canonical / lexicographic form).

        Serial DFS on the sorted form produces the lexicographically
        smallest DFS tree, which is the oracle for NVG-DFS validation.
        """
        ci = self.column_idx.copy()
        rp = self.row_ptr
        for u in range(self.n_vertices):
            lo, hi = rp[u], rp[u + 1]
            if hi - lo > 1:
                ci[lo:hi] = np.sort(ci[lo:hi])
        meta = dict(self.meta)
        meta["sorted_neighbors"] = True
        return CSRGraph(rp, ci, self.directed, self.name, meta)

    def symmetrize(self) -> "CSRGraph":
        """Return the undirected closure: every arc gets its reverse.

        Duplicate arcs and self-loops introduced by the union are removed;
        this mirrors the standard SuiteSparse preprocessing used by graph
        traversal papers.
        """
        edges = self.edge_array()
        both = np.vstack([edges, edges[:, ::-1]])
        return from_edges(
            self.n_vertices,
            both,
            directed=False,
            name=self.name,
            dedupe=True,
            drop_self_loops=True,
            meta={**self.meta, "symmetrized": True},
        )

    def reverse(self) -> "CSRGraph":
        """Return the graph with every arc reversed (transpose)."""
        edges = self.edge_array()
        return from_edges(
            self.n_vertices,
            edges[:, ::-1],
            directed=self.directed,
            name=self.name,
            meta=dict(self.meta),
        )

    def permute(self, perm: Sequence[int]) -> "CSRGraph":
        """Relabel vertices: new id of old vertex ``u`` is ``perm[u]``.

        ``perm`` must be a permutation of ``range(n_vertices)``.  Used to
        randomize vertex order so results do not depend on generator
        labelling artifacts.
        """
        perm = np.asarray(perm, dtype=_INDEX_DTYPE)
        n = self.n_vertices
        if perm.shape != (n,) or not np.array_equal(np.sort(perm), np.arange(n)):
            raise GraphFormatError("perm must be a permutation of range(n_vertices)")
        edges = self.edge_array()
        remapped = np.column_stack([perm[edges[:, 0]], perm[edges[:, 1]]])
        return from_edges(n, remapped, directed=self.directed, name=self.name,
                          meta=dict(self.meta))

    def subgraph(self, vertices: Sequence[int]) -> "CSRGraph":
        """Induced subgraph on ``vertices`` (relabelled to 0..k-1 in order)."""
        verts = np.asarray(vertices, dtype=_INDEX_DTYPE)
        if verts.size != np.unique(verts).size:
            raise GraphFormatError("subgraph vertex list contains duplicates")
        if verts.size and (verts.min() < 0 or verts.max() >= self.n_vertices):
            raise GraphFormatError("subgraph vertex out of range")
        remap = np.full(self.n_vertices, -1, dtype=_INDEX_DTYPE)
        remap[verts] = np.arange(verts.size)
        edges = self.edge_array()
        mask = (remap[edges[:, 0]] >= 0) & (remap[edges[:, 1]] >= 0)
        kept = edges[mask]
        remapped = np.column_stack([remap[kept[:, 0]], remap[kept[:, 1]]])
        return from_edges(int(verts.size), remapped, directed=self.directed,
                          name=f"{self.name}#sub", meta=dict(self.meta))

    # ------------------------------------------------------------------
    # Checks and reports
    # ------------------------------------------------------------------
    def is_symmetric(self) -> bool:
        """True if every stored arc has its reverse stored."""
        edges = self.edge_array()
        fwd = set(map(tuple, edges.tolist()))
        return all((v, u) in fwd for (u, v) in fwd)

    def has_self_loops(self) -> bool:
        """True if any arc ``(u, u)`` is stored."""
        src = np.repeat(np.arange(self.n_vertices, dtype=_INDEX_DTYPE), self.degree())
        return bool(np.any(src == self.column_idx))

    def memory_bytes(self) -> int:
        """CSR footprint in bytes (the paper reports per-graph GPU memory)."""
        return int(self.row_ptr.nbytes + self.column_idx.nbytes)

    # ------------------------------------------------------------------
    # SciPy interop
    # ------------------------------------------------------------------
    def to_scipy(self):
        """The adjacency structure as a ``scipy.sparse.csr_matrix``.

        Values are all ones (pattern matrix); shape is square.
        """
        from scipy.sparse import csr_matrix

        n = self.n_vertices
        data = np.ones(self.n_edges, dtype=np.int8)
        return csr_matrix((data, self.column_idx, self.row_ptr), shape=(n, n))

    @classmethod
    def from_scipy(cls, matrix, *, directed: bool = True,
                   name: str = "") -> "CSRGraph":
        """Build a graph from any ``scipy.sparse`` matrix.

        The matrix must be square; values are discarded (structure only),
        explicit zeros included.  Converts to CSR format if needed.
        """
        mat = matrix.tocsr()
        rows, cols = mat.shape
        if rows != cols:
            raise GraphFormatError(
                f"adjacency matrix must be square, got {rows}x{cols}"
            )
        return cls(
            np.asarray(mat.indptr, dtype=_INDEX_DTYPE),
            np.asarray(mat.indices, dtype=_INDEX_DTYPE),
            directed=directed,
            name=name,
            meta={"source": "scipy"},
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "digraph" if self.directed else "graph"
        label = f" {self.name!r}" if self.name else ""
        return (
            f"CSRGraph({kind}{label}, n_vertices={self.n_vertices}, "
            f"n_edges={self.n_edges})"
        )


def from_edges(
    n_vertices: int,
    edges: Iterable[Tuple[int, int]],
    *,
    directed: bool = False,
    name: str = "",
    dedupe: bool = False,
    drop_self_loops: bool = False,
    sort_neighbors: bool = True,
    meta: Optional[dict] = None,
) -> CSRGraph:
    """Build a :class:`CSRGraph` from an iterable of ``(u, v)`` arcs.

    Parameters
    ----------
    dedupe:
        Remove duplicate arcs (SuiteSparse graphs are simple).
    drop_self_loops:
        Remove ``(u, u)`` arcs.
    sort_neighbors:
        Sort each adjacency list ascending (default; gives canonical CSR,
        required for the lexicographic-DFS oracle).
    """
    if n_vertices < 0:
        raise GraphFormatError(f"n_vertices must be >= 0, got {n_vertices}")
    arr = np.asarray(list(edges) if not isinstance(edges, np.ndarray) else edges,
                     dtype=_INDEX_DTYPE)
    if arr.size == 0:
        arr = arr.reshape(0, 2)
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise GraphFormatError(f"edges must be (m, 2)-shaped, got {arr.shape}")
    if arr.size and (arr.min() < 0 or arr.max() >= n_vertices):
        raise GraphFormatError(
            f"edge endpoints must lie in [0, {n_vertices}), got range "
            f"[{arr.min()}, {arr.max()}]"
        )
    if drop_self_loops and arr.size:
        arr = arr[arr[:, 0] != arr[:, 1]]
    if dedupe and arr.size:
        arr = np.unique(arr, axis=0)

    counts = np.bincount(arr[:, 0], minlength=n_vertices).astype(_INDEX_DTYPE)
    row_ptr = np.zeros(n_vertices + 1, dtype=_INDEX_DTYPE)
    np.cumsum(counts, out=row_ptr[1:])

    order = np.argsort(arr[:, 0], kind="stable")
    column_idx = arr[order, 1].copy()
    if sort_neighbors:
        # Arcs are grouped by source after the stable sort; sorting (src, dst)
        # lexicographically sorts each adjacency list in one pass.
        order2 = np.lexsort((arr[:, 1], arr[:, 0]))
        column_idx = arr[order2, 1].copy()

    full_meta = dict(meta or {})
    if sort_neighbors:
        full_meta["sorted_neighbors"] = True
    return CSRGraph(row_ptr, column_idx, directed=directed, name=name, meta=full_meta)


def from_adjacency(
    adjacency: Sequence[Sequence[int]],
    *,
    directed: bool = False,
    name: str = "",
) -> CSRGraph:
    """Build a :class:`CSRGraph` from an adjacency-list-of-lists.

    Convenient for hand-written example graphs in tests; adjacency order
    is preserved exactly (no sorting), which matters when a test pins down
    a specific serial DFS traversal order.
    """
    n = len(adjacency)
    row_ptr = np.zeros(n + 1, dtype=_INDEX_DTYPE)
    cols: list = []
    for u, nbrs in enumerate(adjacency):
        row_ptr[u + 1] = row_ptr[u] + len(nbrs)
        cols.extend(int(v) for v in nbrs)
    column_idx = np.asarray(cols, dtype=_INDEX_DTYPE)
    return CSRGraph(row_ptr, column_idx, directed=directed, name=name)
