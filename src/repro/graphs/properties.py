"""Structural property analyzers for graphs.

Used to (a) verify that the synthetic corpus lands in the structural
regimes the paper's conclusions depend on (deep/narrow vs shallow/wide),
and (b) regenerate Tables 3 and 4.  Everything here is pure NumPy
(frontier-vectorized BFS) so analysis stays fast on simulator-scale
graphs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.graphs.csr import CSRGraph
from repro.utils.rng import RngLike, make_rng

__all__ = [
    "bfs_levels",
    "num_bfs_levels",
    "connected_components",
    "largest_component",
    "approximate_diameter",
    "degree_statistics",
    "GraphProfile",
    "profile_graph",
    "classify_regime",
    "regime",
]


def bfs_levels(graph: CSRGraph, root: int) -> np.ndarray:
    """Level (hop distance) of every vertex from ``root``; -1 if unreachable.

    Frontier-vectorized: each iteration expands the whole frontier with
    array indexing rather than per-vertex Python loops.
    """
    n = graph.n_vertices
    graph._check_vertex(root)
    level = np.full(n, -1, dtype=np.int64)
    level[root] = 0
    frontier = np.array([root], dtype=np.int64)
    depth = 0
    rp, ci = graph.row_ptr, graph.column_idx
    while frontier.size:
        depth += 1
        # Gather all neighbours of the frontier in one shot.
        starts = rp[frontier]
        ends = rp[frontier + 1]
        total = int(np.sum(ends - starts))
        if total == 0:
            break
        out = np.empty(total, dtype=np.int64)
        pos = 0
        for s, e in zip(starts, ends):
            cnt = e - s
            out[pos:pos + cnt] = ci[s:e]
            pos += cnt
        cand = np.unique(out)
        new = cand[level[cand] < 0]
        level[new] = depth
        frontier = new
    return level


def num_bfs_levels(graph: CSRGraph, root: int) -> int:
    """Number of BFS levels from ``root`` (the paper quotes 17,346 for
    euro_osm vs 10 for ljournal — the axis of the BFS/DFS crossover)."""
    lv = bfs_levels(graph, root)
    reached = lv[lv >= 0]
    return int(reached.max()) + 1 if reached.size else 0


def connected_components(graph: CSRGraph) -> np.ndarray:
    """Component id per vertex (undirected interpretation), via repeated BFS."""
    n = graph.n_vertices
    comp = np.full(n, -1, dtype=np.int64)
    cid = 0
    for v in range(n):
        if comp[v] >= 0:
            continue
        lv = bfs_levels(graph, v)
        comp[lv >= 0] = cid
        cid += 1
    return comp


def largest_component(graph: CSRGraph) -> Tuple[CSRGraph, np.ndarray]:
    """Induced subgraph on the largest connected component.

    Returns ``(subgraph, original_vertex_ids)``.  Traversal papers
    evaluate on the giant component; generators here already guarantee
    connectivity, so this is mainly for externally loaded graphs.
    """
    comp = connected_components(graph)
    counts = np.bincount(comp)
    big = int(np.argmax(counts))
    verts = np.flatnonzero(comp == big)
    return graph.subgraph(verts), verts


def approximate_diameter(graph: CSRGraph, *, seed: RngLike = None, sweeps: int = 4) -> int:
    """Lower-bound diameter estimate by iterated double sweep.

    Start from a random vertex, repeatedly BFS to the farthest vertex;
    the final eccentricity is a (usually tight) lower bound.
    """
    n = graph.n_vertices
    if n == 0:
        return 0
    rng = make_rng(seed)
    v = int(rng.integers(0, n))
    best = 0
    for _ in range(max(1, sweeps)):
        lv = bfs_levels(graph, v)
        reached = lv >= 0
        if not np.any(reached):
            break
        ecc = int(lv[reached].max())
        best = max(best, ecc)
        far = np.flatnonzero(lv == ecc)
        v = int(far[0])
    return best


def degree_statistics(graph: CSRGraph) -> dict:
    """Degree distribution summary (min/max/mean plus heavy-tail indicator)."""
    deg = graph.degree()
    if deg.size == 0:
        return {"min": 0, "max": 0, "mean": 0.0, "p99": 0, "heavy_tail": False}
    p99 = float(np.percentile(deg, 99))
    mean = float(deg.mean())
    return {
        "min": int(deg.min()),
        "max": int(deg.max()),
        "mean": mean,
        "p99": p99,
        # Heavy tail: the 99th percentile dwarfs the mean (power-law signature).
        "heavy_tail": bool(p99 > 4.0 * mean and deg.max() > 16),
    }


@dataclass(frozen=True)
class GraphProfile:
    """Structural profile of a graph, used for Table 4 and regime checks."""

    name: str
    n_vertices: int
    n_edges: int
    avg_degree: float
    max_degree: int
    bfs_levels_from_0: int
    approx_diameter: int
    heavy_tail: bool
    group: str
    # Partition quality (filled when profile_graph gets partition_k;
    # None means no partition was requested).
    partition_k: Optional[int] = None
    edge_cut_fraction: Optional[float] = None
    balance_factor: Optional[float] = None

    @property
    def regime(self) -> str:
        """``"deep"`` (road/mesh-like), ``"shallow"`` (social-like), or ``"mid"``."""
        return classify_regime(self.n_vertices, self.bfs_levels_from_0)


def classify_regime(n_vertices: int, levels: int) -> str:
    """``"deep"``, ``"shallow"``, or ``"mid"`` from a BFS level count.

    The classifier mirrors the paper's discussion: road networks and
    meshes need ~O(sqrt(n)) or more BFS levels (deep), social/web
    graphs finish in ~O(log n) levels (shallow).  This is also the axis
    of the BFS/DFS crossover, so :mod:`repro.core.dispatch` keys its
    backend choice on it.
    """
    import math

    n = max(int(n_vertices), 2)
    if levels >= 1.2 * math.sqrt(n):
        return "deep"
    if levels <= 2.5 * math.log2(n):
        return "shallow"
    return "mid"


def regime(graph: CSRGraph, root: int = 0) -> str:
    """Structural regime of ``graph`` (one BFS from ``root``)."""
    if graph.n_vertices == 0:
        return "shallow"
    return classify_regime(graph.n_vertices, num_bfs_levels(graph, root))


def profile_graph(graph: CSRGraph, *, seed: RngLike = None,
                  partition_k: Optional[int] = None,
                  partition_seed: RngLike = 0) -> GraphProfile:
    """Compute a :class:`GraphProfile` for ``graph``.

    With ``partition_k`` set, a balanced k-way partition is computed
    (:func:`repro.graphs.partition.partition_labels`) and its quality —
    edge-cut fraction and balance factor, the two axes the sharded
    execution tier cares about — lands in the profile.
    """
    deg = degree_statistics(graph)
    levels = num_bfs_levels(graph, 0) if graph.n_vertices else 0
    cut = balance = None
    if partition_k is not None and graph.n_vertices:
        from repro.graphs.partition import partition_labels, partition_quality

        labels = partition_labels(graph, partition_k, seed=partition_seed)
        quality = partition_quality(graph, labels)
        partition_k = quality["k"]
        cut = quality["edge_cut_fraction"]
        balance = quality["balance_factor"]
    return GraphProfile(
        name=graph.name or "unnamed",
        n_vertices=graph.n_vertices,
        n_edges=graph.n_edges,
        avg_degree=deg["mean"],
        max_degree=deg["max"],
        bfs_levels_from_0=levels,
        approx_diameter=approximate_diameter(graph, seed=seed),
        heavy_tail=deg["heavy_tail"],
        group=str(graph.meta.get("group", "unknown")),
        partition_k=partition_k,
        edge_cut_fraction=cut,
        balance_factor=balance,
    )
