"""Graph substrate: CSR structure, generators, corpus, I/O, properties."""

from repro.graphs.csr import CSRGraph, from_adjacency, from_edges
from repro.graphs.partition import (
    District,
    PartitionedCSR,
    partition_graph,
    partition_labels,
    partition_quality,
)
from repro.graphs.properties import (
    GraphProfile,
    approximate_diameter,
    bfs_levels,
    connected_components,
    degree_statistics,
    largest_component,
    num_bfs_levels,
    profile_graph,
)

__all__ = [
    "CSRGraph",
    "from_edges",
    "from_adjacency",
    "bfs_levels",
    "num_bfs_levels",
    "connected_components",
    "largest_component",
    "approximate_diameter",
    "degree_statistics",
    "GraphProfile",
    "profile_graph",
    "District",
    "PartitionedCSR",
    "partition_graph",
    "partition_labels",
    "partition_quality",
]
