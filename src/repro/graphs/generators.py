"""Synthetic graph generators mirroring the paper's evaluation corpus.

The paper evaluates 234 SuiteSparse graphs spanning three structural
regimes that drive all of its conclusions:

* **deep & narrow** — road networks and meshes (DIMACS10): near-constant
  degree, diameter in the thousands; BFS needs many levels, DFS paths are
  long.  Generators: :func:`road_network`, :func:`delaunay_mesh`,
  :func:`bubble_mesh`, :func:`grid2d`, :func:`random_geometric`.
* **shallow & wide** — social/web networks (SNAP/LAW): power-law degrees,
  diameter ~ 10.  Generators: :func:`preferential_attachment`,
  :func:`rmat`, :func:`web_copy_model`, :func:`small_world`.
* **intermediate** — citation and co-purchase graphs.  Generators:
  :func:`citation_graph`, :func:`co_purchase`.

All generators are deterministic under a seed, return symmetric simple
:class:`~repro.graphs.csr.CSRGraph` instances (matching the traversal
papers' preprocessing) unless noted, and guarantee connectivity when
``ensure_connected=True`` by threading a random spanning backbone.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.errors import GraphConstructionError
from repro.graphs.csr import CSRGraph, from_edges
from repro.utils.rng import RngLike, make_rng

__all__ = [
    "path_graph",
    "cycle_graph",
    "star_graph",
    "complete_graph",
    "binary_tree",
    "grid2d",
    "grid3d",
    "road_network",
    "delaunay_mesh",
    "random_geometric",
    "bubble_mesh",
    "preferential_attachment",
    "skewed_tree",
    "small_world",
    "star_mesh",
    "wide_layers",
    "rmat",
    "web_copy_model",
    "citation_graph",
    "co_purchase",
    "random_spanning_backbone",
]


def _require(cond: bool, msg: str) -> None:
    if not cond:
        raise GraphConstructionError(msg)


# ---------------------------------------------------------------------------
# Deterministic elementary graphs (test fixtures and corner cases)
# ---------------------------------------------------------------------------

def path_graph(n: int, name: str = "") -> CSRGraph:
    """Path 0-1-...-(n-1): the deepest possible DFS stack for its size."""
    _require(n >= 1, f"path_graph needs n >= 1, got {n}")
    u = np.arange(n - 1, dtype=np.int64)
    edges = np.column_stack([u, u + 1])
    both = np.vstack([edges, edges[:, ::-1]]) if n > 1 else edges.reshape(0, 2)
    return from_edges(n, both, name=name or f"path{n}",
                      meta={"family": "path", "group": "synthetic"})


def cycle_graph(n: int, name: str = "") -> CSRGraph:
    """Cycle on ``n >= 3`` vertices (one back edge under DFS)."""
    _require(n >= 3, f"cycle_graph needs n >= 3, got {n}")
    u = np.arange(n, dtype=np.int64)
    v = (u + 1) % n
    edges = np.column_stack([u, v])
    both = np.vstack([edges, edges[:, ::-1]])
    return from_edges(n, both, name=name or f"cycle{n}",
                      meta={"family": "cycle", "group": "synthetic"})


def star_graph(n: int, name: str = "") -> CSRGraph:
    """Star with hub 0: maximal branching, depth 1 (worst case for DFS parallelism)."""
    _require(n >= 1, f"star_graph needs n >= 1, got {n}")
    leaves = np.arange(1, n, dtype=np.int64)
    hub = np.zeros(n - 1, dtype=np.int64)
    edges = np.column_stack([hub, leaves])
    both = np.vstack([edges, edges[:, ::-1]]) if n > 1 else edges.reshape(0, 2)
    return from_edges(n, both, name=name or f"star{n}",
                      meta={"family": "star", "group": "synthetic"})


def complete_graph(n: int, name: str = "") -> CSRGraph:
    """Complete graph K_n (dense stress test for visited-CAS contention)."""
    _require(n >= 1, f"complete_graph needs n >= 1, got {n}")
    idx = np.arange(n, dtype=np.int64)
    u, v = np.meshgrid(idx, idx, indexing="ij")
    mask = u != v
    edges = np.column_stack([u[mask], v[mask]])
    return from_edges(n, edges, name=name or f"K{n}",
                      meta={"family": "complete", "group": "synthetic"})


def binary_tree(depth: int, name: str = "") -> CSRGraph:
    """Complete binary tree of the given depth (ideal work-stealing shape)."""
    _require(depth >= 0, f"binary_tree needs depth >= 0, got {depth}")
    n = (1 << (depth + 1)) - 1
    child = np.arange(1, n, dtype=np.int64)
    parent = (child - 1) // 2
    edges = np.column_stack([parent, child])
    both = np.vstack([edges, edges[:, ::-1]]) if n > 1 else edges.reshape(0, 2)
    return from_edges(n, both, name=name or f"btree{depth}",
                      meta={"family": "tree", "group": "synthetic"})


def skewed_tree(n_vertices: int, *, skew: float = 0.85,
                seed: RngLike = None, name: str = "") -> CSRGraph:
    """Deep skewed random tree: the steal-heavy regime.

    Each vertex ``i`` attaches to ``i - 1`` with probability ``skew``
    (extending one long spine) and to a uniform earlier vertex
    otherwise (sprouting side branches off the spine).  High ``skew``
    yields depth O(skew * n) with thin, unevenly sized subtrees hanging
    off it: one warp ends up owning the spine while the rest go idle
    and hammer the intra/inter steal protocols — the workload shape
    where bailout frequency, not expand throughput, dominates.
    """
    _require(n_vertices >= 2, f"skewed_tree needs >= 2 vertices, got {n_vertices}")
    _require(0.0 <= skew <= 1.0, f"skew must be in [0, 1], got {skew}")
    rng = make_rng(seed)
    child = np.arange(1, n_vertices, dtype=np.int64)
    spine = rng.random(n_vertices - 1) < skew
    # Uniform over [0, i) per child: floor(U * i) — vectorized randrange.
    uniform = (rng.random(n_vertices - 1) * child).astype(np.int64)
    parent = np.where(spine, child - 1, uniform)
    edges = np.column_stack([parent, child])
    both = np.vstack([edges, edges[:, ::-1]])
    return from_edges(n_vertices, both, dedupe=True, drop_self_loops=True,
                      name=name or f"skewtree{n_vertices}",
                      meta={"family": "skewed_tree", "group": "synthetic"})


# ---------------------------------------------------------------------------
# Deep & narrow regime (DIMACS10 analogues)
# ---------------------------------------------------------------------------

def grid2d(rows: int, cols: int, *, diagonal: bool = False, name: str = "") -> CSRGraph:
    """2-D grid mesh (``rows x cols``), optionally with one diagonal per cell.

    Diameter is ``rows + cols - 2``; the regular-degree, huge-diameter
    regime of DIMACS10 numerical-simulation meshes.
    """
    _require(rows >= 1 and cols >= 1, f"grid2d needs positive dims, got {rows}x{cols}")
    n = rows * cols
    ids = np.arange(n, dtype=np.int64).reshape(rows, cols)
    horiz = np.column_stack([ids[:, :-1].ravel(), ids[:, 1:].ravel()])
    vert = np.column_stack([ids[:-1, :].ravel(), ids[1:, :].ravel()])
    parts = [horiz, vert]
    if diagonal:
        parts.append(np.column_stack([ids[:-1, :-1].ravel(), ids[1:, 1:].ravel()]))
    edges = np.vstack(parts) if parts else np.empty((0, 2), dtype=np.int64)
    both = np.vstack([edges, edges[:, ::-1]]) if edges.size else edges
    return from_edges(n, both, name=name or f"grid{rows}x{cols}",
                      meta={"family": "mesh", "group": "dimacs10"})


def grid3d(nx: int, ny: int, nz: int, *, name: str = "") -> CSRGraph:
    """3-D grid mesh (6-neighbour stencil), the 'auto'-style FEM regime.

    DIMACS10's 'auto' is a 3-D finite-element mesh: near-constant degree,
    diameter ``nx + ny + nz``, locally branched in three directions.
    """
    _require(nx >= 1 and ny >= 1 and nz >= 1,
             f"grid3d needs positive dims, got {nx}x{ny}x{nz}")
    n = nx * ny * nz
    ids = np.arange(n, dtype=np.int64).reshape(nx, ny, nz)
    parts = [
        np.column_stack([ids[:-1, :, :].ravel(), ids[1:, :, :].ravel()]),
        np.column_stack([ids[:, :-1, :].ravel(), ids[:, 1:, :].ravel()]),
        np.column_stack([ids[:, :, :-1].ravel(), ids[:, :, 1:].ravel()]),
    ]
    parts = [p for p in parts if p.size]
    edges = np.vstack(parts) if parts else np.empty((0, 2), dtype=np.int64)
    both = (np.vstack([edges, edges[:, ::-1]])
            if edges.size else np.empty((0, 2), dtype=np.int64))
    return from_edges(n, both, name=name or f"grid{nx}x{ny}x{nz}",
                      meta={"family": "mesh3d", "group": "dimacs10"})


def road_network(
    n_vertices: int,
    *,
    seed: RngLike = None,
    extra_edge_fraction: float = 0.08,
    jitter: float = 0.35,
    name: str = "",
) -> CSRGraph:
    """OSM-style road network: sparse, planar-ish, avg degree ~2.2-2.6.

    Construction: place vertices on a jittered square lattice, connect
    each to a subset of lattice neighbours (roads follow the lattice), and
    drop a fraction of links to create winding, high-diameter corridors.
    A random spanning backbone guarantees connectivity.  The result has
    diameter O(sqrt(n)) with long degree-2 chains — the regime where the
    paper's DiggerBees beats BFS (e.g. 'euro_osm', 17,346 BFS levels).
    """
    _require(n_vertices >= 2, f"road_network needs >= 2 vertices, got {n_vertices}")
    _require(0.0 <= extra_edge_fraction <= 1.0, "extra_edge_fraction in [0,1]")
    rng = make_rng(seed)
    side = max(2, int(math.isqrt(n_vertices)))
    rows = side
    cols = (n_vertices + side - 1) // side
    ids = np.full(rows * cols, -1, dtype=np.int64)
    ids[:n_vertices] = np.arange(n_vertices)
    grid = ids.reshape(rows, cols)

    def lattice_pairs() -> np.ndarray:
        h = np.column_stack([grid[:, :-1].ravel(), grid[:, 1:].ravel()])
        v = np.column_stack([grid[:-1, :].ravel(), grid[1:, :].ravel()])
        pairs = np.vstack([h, v])
        return pairs[(pairs[:, 0] >= 0) & (pairs[:, 1] >= 0)]

    candidates = lattice_pairs()
    # Keep ~55% of lattice links: creates dead ends and winding corridors.
    keep = rng.random(candidates.shape[0]) < 0.55
    kept = candidates[keep]
    # Long-range "highway" shortcuts, a small fraction, mostly local.
    n_extra = int(extra_edge_fraction * n_vertices)
    if n_extra:
        src = rng.integers(0, n_vertices, size=n_extra)
        span = np.maximum(1, (rng.exponential(scale=jitter * side, size=n_extra)).astype(np.int64))
        dst = np.clip(src + span, 0, n_vertices - 1)
        extra = np.column_stack([src, dst])
        extra = extra[extra[:, 0] != extra[:, 1]]
        kept = np.vstack([kept, extra])
    backbone = random_spanning_backbone(n_vertices, rng, chain_bias=0.9,
                                        locality_window=max(2, side // 8))
    edges = np.vstack([kept, backbone])
    both = np.vstack([edges, edges[:, ::-1]])
    return from_edges(n_vertices, both, dedupe=True, drop_self_loops=True,
                      name=name or f"road{n_vertices}",
                      meta={"family": "road", "group": "dimacs10"})


def delaunay_mesh(n_vertices: int, *, seed: RngLike = None, name: str = "") -> CSRGraph:
    """Delaunay triangulation of uniform random points (DIMACS10 'delaunay_nXX').

    Uses :mod:`scipy.spatial`; average degree ~6, diameter O(sqrt(n)).
    """
    _require(n_vertices >= 4, f"delaunay_mesh needs >= 4 points, got {n_vertices}")
    from scipy.spatial import Delaunay  # local import: scipy is heavy

    rng = make_rng(seed)
    pts = rng.random((n_vertices, 2))
    tri = Delaunay(pts)
    s = tri.simplices
    edges = np.vstack([s[:, [0, 1]], s[:, [1, 2]], s[:, [2, 0]]]).astype(np.int64)
    both = np.vstack([edges, edges[:, ::-1]])
    return from_edges(n_vertices, both, dedupe=True, drop_self_loops=True,
                      name=name or f"delaunay{n_vertices}",
                      meta={"family": "mesh", "group": "dimacs10"})


def random_geometric(
    n_vertices: int,
    *,
    radius: Optional[float] = None,
    seed: RngLike = None,
    name: str = "",
) -> CSRGraph:
    """Random geometric graph (DIMACS10 'rgg_nXX'): connect points within radius.

    Default radius scales as ``sqrt(2.2 * ln(n) / (pi * n))``, slightly above
    the connectivity threshold, producing the dense-local/huge-diameter
    regime of the paper's 'rgg' graphs.  A spanning backbone guarantees
    connectivity for the small n used in simulation.
    """
    _require(n_vertices >= 2, f"random_geometric needs >= 2 points, got {n_vertices}")
    from scipy.spatial import cKDTree

    rng = make_rng(seed)
    if radius is None:
        radius = math.sqrt(2.2 * math.log(max(n_vertices, 2)) / (math.pi * n_vertices))
    pts = rng.random((n_vertices, 2))
    # Sort points along a space-filling sweep so consecutive ids are close
    # in the plane and backbone chain edges stay geometrically local.
    order = np.lexsort((pts[:, 1], np.floor(pts[:, 0] * math.sqrt(n_vertices))))
    pts = pts[order]
    tree = cKDTree(pts)
    pairs = tree.query_pairs(r=radius, output_type="ndarray").astype(np.int64)
    backbone = random_spanning_backbone(n_vertices, rng, chain_bias=0.95,
                                        locality_window=8)
    edges = np.vstack([pairs, backbone]) if pairs.size else backbone
    both = np.vstack([edges, edges[:, ::-1]])
    return from_edges(n_vertices, both, dedupe=True, drop_self_loops=True,
                      name=name or f"rgg{n_vertices}",
                      meta={"family": "rgg", "group": "dimacs10"})


def bubble_mesh(
    n_bubbles: int,
    bubble_size: int,
    *,
    seed: RngLike = None,
    name: str = "",
) -> CSRGraph:
    """Elongated thinned mesh with cavities (DIMACS10 'hugebubbles').

    The original graphs are huge planar meshes (degree ~3) around
    bubble-shaped cavities: locally branched yet globally very deep.  At
    simulator scale a fully 2-connected mesh "self-drains" (the DFS wave
    completes ancestors almost immediately, something sheer size prevents
    at 21M vertices), so we reproduce the regime with a tall, thin,
    *thinned* jittered lattice: ~50% of lattice links are kept (creating
    the dead-end stubs and winding corridors that keep old stack entries
    live), a local backbone guarantees connectivity, and circular
    cavities are punched out.  Result: degree ~2.5-3, diameter
    O(n / width), mesh-like branching.
    """
    _require(n_bubbles >= 1 and bubble_size >= 4,
             f"bubble_mesh needs n_bubbles >= 1, bubble_size >= 4, "
             f"got {n_bubbles}, {bubble_size}")
    rng = make_rng(seed)
    n_target = max(16, n_bubbles * bubble_size)
    # Tall thin lattice: width ~ sqrt(n)/3 so the diameter is ~3x a square's.
    width = max(6, int(math.isqrt(n_target)) // 2)
    rows = (n_target + width - 1) // width
    ids = np.full(rows * width, -1, dtype=np.int64)
    ids[:n_target] = np.arange(n_target)
    grid = ids.reshape(rows, width)

    h = np.column_stack([grid[:, :-1].ravel(), grid[:, 1:].ravel()])
    v = np.column_stack([grid[:-1, :].ravel(), grid[1:, :].ravel()])
    d = np.column_stack([grid[:-1, :-1].ravel(), grid[1:, 1:].ravel()])
    lattice = np.vstack([h, v, d])
    lattice = lattice[(lattice[:, 0] >= 0) & (lattice[:, 1] >= 0)]
    kept = lattice[rng.random(lattice.shape[0]) < 0.45]
    # Mid-range shortcuts (cavity rims meeting): these let a depth-first
    # dive jump ahead, leaving large live regions behind on the stack --
    # the property that feeds hierarchical stealing.
    n_extra = max(1, n_target // 16)
    src = rng.integers(0, n_target, size=n_extra)
    span = np.maximum(width, rng.exponential(scale=2.5 * width,
                                             size=n_extra).astype(np.int64))
    dst = np.clip(src + span, 0, n_target - 1)
    extra = np.column_stack([src, dst])
    extra = extra[extra[:, 0] != extra[:, 1]]
    backbone = random_spanning_backbone(n_target, rng, chain_bias=0.85,
                                        locality_window=max(2, width))
    edges = np.vstack([kept, extra, backbone])
    both = np.vstack([edges, edges[:, ::-1]])
    base = from_edges(n_target, both, dedupe=True, drop_self_loops=True)

    # Punch circular cavities ("bubbles") covering ~6% of the area.
    r_hole = max(1, width // 6)
    n_holes = max(1, int(0.06 * rows * width / (math.pi * r_hole**2)))
    keep = np.ones(rows * width, dtype=bool)
    rr, cc = np.meshgrid(np.arange(rows), np.arange(width), indexing="ij")
    for _ in range(n_holes):
        hr = int(rng.integers(0, rows))
        hc = int(rng.integers(0, width))
        keep &= (((rr - hr) ** 2 + (cc - hc) ** 2) > r_hole**2).ravel()
    keep_vertices = np.flatnonzero(keep.ravel()[:n_target])
    sub = base.subgraph(keep_vertices)

    # Cavities may disconnect small pockets; keep the giant component.
    from repro.graphs.properties import largest_component

    giant, _ = largest_component(sub)
    return giant.with_name(name or f"bubbles{n_bubbles}x{bubble_size}",
                           family="bubbles", group="dimacs10")


# ---------------------------------------------------------------------------
# Shallow & wide regime (SNAP / LAW analogues)
# ---------------------------------------------------------------------------

def preferential_attachment(
    n_vertices: int,
    m: int = 4,
    *,
    seed: RngLike = None,
    name: str = "",
) -> CSRGraph:
    """Barabasi-Albert power-law graph (SNAP social-network analogue).

    Each new vertex attaches to ``m`` existing vertices chosen
    proportionally to degree (implemented with the repeated-endpoints
    urn trick, O(n m)).  Diameter ~ log n / log log n.
    """
    _require(m >= 1, f"preferential_attachment needs m >= 1, got {m}")
    _require(n_vertices > m, f"need n_vertices > m, got {n_vertices} <= {m}")
    rng = make_rng(seed)
    # Urn of endpoints: each edge contributes both endpoints, so sampling
    # uniformly from the urn is degree-proportional sampling.
    urn = list(range(m + 1)) * 2  # seed clique-ish core
    edges = [(i, j) for i in range(m + 1) for j in range(i + 1, m + 1)]
    for v in range(m + 1, n_vertices):
        targets: set = set()
        while len(targets) < m:
            targets.add(urn[int(rng.integers(0, len(urn)))])
        for t in targets:
            edges.append((v, t))
            urn.append(v)
            urn.append(t)
    arr = np.asarray(edges, dtype=np.int64)
    both = np.vstack([arr, arr[:, ::-1]])
    return from_edges(n_vertices, both, dedupe=True, drop_self_loops=True,
                      name=name or f"ba{n_vertices}",
                      meta={"family": "social", "group": "snap"})


def small_world(
    n_vertices: int,
    k: int = 6,
    rewire_p: float = 0.05,
    *,
    seed: RngLike = None,
    name: str = "",
) -> CSRGraph:
    """Watts-Strogatz small-world graph (clustered, moderate diameter)."""
    _require(n_vertices >= 3, f"small_world needs >= 3 vertices, got {n_vertices}")
    _require(2 <= k < n_vertices, f"need 2 <= k < n, got k={k}, n={n_vertices}")
    _require(0.0 <= rewire_p <= 1.0, "rewire_p in [0,1]")
    rng = make_rng(seed)
    half = max(1, k // 2)
    u = np.repeat(np.arange(n_vertices, dtype=np.int64), half)
    offs = np.tile(np.arange(1, half + 1, dtype=np.int64), n_vertices)
    v = (u + offs) % n_vertices
    rewire = rng.random(u.size) < rewire_p
    v = v.copy()
    v[rewire] = rng.integers(0, n_vertices, size=int(rewire.sum()))
    edges = np.column_stack([u, v])
    edges = edges[edges[:, 0] != edges[:, 1]]
    both = np.vstack([edges, edges[:, ::-1]])
    return from_edges(n_vertices, both, dedupe=True, drop_self_loops=True,
                      name=name or f"ws{n_vertices}",
                      meta={"family": "smallworld", "group": "snap"})


def star_mesh(
    n_hubs: int,
    leaves_per_hub: int = 16,
    *,
    chord_factor: float = 1.0,
    seed: RngLike = None,
    name: str = "",
) -> CSRGraph:
    """Hub mesh with pendant leaves: the frontier engine's home turf.

    ``n_hubs`` hubs form a ring plus ``chord_factor * n_hubs`` random
    chords (a small-diameter core); each hub carries
    ``leaves_per_hub`` degree-1 leaves.  BFS finishes in
    ~``2 + O(log n_hubs)`` levels with one huge leaf frontier, while a
    DFS has no depth to exploit — the extreme shallow-wide regime the
    paper's crossover analysis assigns to level-synchronous methods.
    Total vertices: ``n_hubs * (1 + leaves_per_hub)``.
    """
    _require(n_hubs >= 2, f"star_mesh needs >= 2 hubs, got {n_hubs}")
    _require(leaves_per_hub >= 0,
             f"leaves_per_hub must be >= 0, got {leaves_per_hub}")
    _require(chord_factor >= 0.0,
             f"chord_factor must be >= 0, got {chord_factor}")
    rng = make_rng(seed)
    hubs = np.arange(n_hubs, dtype=np.int64)
    ring = np.column_stack([hubs, (hubs + 1) % n_hubs])
    n_chords = int(round(chord_factor * n_hubs))
    chords = rng.integers(0, n_hubs, size=(n_chords, 2)).astype(np.int64)
    leaves = np.arange(n_hubs, n_hubs * (1 + leaves_per_hub),
                       dtype=np.int64)
    hub_of_leaf = (leaves - n_hubs) % n_hubs
    pendant = np.column_stack([hub_of_leaf, leaves])
    edges = np.vstack([ring, chords, pendant])
    both = np.vstack([edges, edges[:, ::-1]])
    n = n_hubs * (1 + leaves_per_hub)
    return from_edges(n, both, dedupe=True, drop_self_loops=True,
                      name=name or f"starmesh{n}",
                      meta={"family": "star_mesh", "group": "synthetic"})


def wide_layers(
    width: int,
    depth: int,
    *,
    fanout: int = 4,
    seed: RngLike = None,
    name: str = "",
) -> CSRGraph:
    """Layered shallow-wide graph: a root feeding ``depth`` wide layers.

    Vertex 0 is the root, connected to every vertex of layer 1; each
    layer-``l`` vertex adds ``fanout`` random edges into layer ``l+1``,
    plus one aligned edge guaranteeing every vertex is reachable.  BFS
    from 0 takes exactly ``depth`` levels of ``width``-vertex frontiers
    — the knob that moves a case along the crossover sweep's x-axis.
    Total vertices: ``1 + width * depth``.
    """
    _require(width >= 1, f"wide_layers needs width >= 1, got {width}")
    _require(depth >= 1, f"wide_layers needs depth >= 1, got {depth}")
    _require(fanout >= 1, f"wide_layers needs fanout >= 1, got {fanout}")
    rng = make_rng(seed)
    lanes = np.arange(width, dtype=np.int64)
    first = 1 + lanes  # layer 1
    root_edges = np.column_stack([np.zeros(width, dtype=np.int64), first])
    inter = []
    for layer in range(depth - 1):
        src_base = 1 + layer * width
        dst_base = src_base + width
        src = np.repeat(src_base + lanes, fanout)
        dst = dst_base + rng.integers(0, width,
                                      size=width * fanout).astype(np.int64)
        # Aligned lane edge: layer l+1 vertex i always reachable from
        # layer l vertex i.
        inter.append(np.column_stack([src_base + lanes, dst_base + lanes]))
        inter.append(np.column_stack([src, dst]))
    edges = np.vstack([root_edges] + inter)
    both = np.vstack([edges, edges[:, ::-1]])
    n = 1 + width * depth
    return from_edges(n, both, dedupe=True, drop_self_loops=True,
                      name=name or f"layers{width}x{depth}",
                      meta={"family": "wide_layers", "group": "synthetic"})


def rmat(
    scale: int,
    edge_factor: int = 16,
    *,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: RngLike = None,
    name: str = "",
    symmetrize: bool = True,
) -> CSRGraph:
    """R-MAT / Kronecker graph (Graph500 / LAW web-crawl analogue).

    ``2**scale`` vertices, ``edge_factor * 2**scale`` arcs sampled by the
    classic recursive quadrant procedure, vectorized over all edges at
    once (one bit per level).  Heavy-tailed degrees, tiny diameter.
    """
    _require(scale >= 1, f"rmat needs scale >= 1, got {scale}")
    _require(edge_factor >= 1, f"rmat needs edge_factor >= 1, got {edge_factor}")
    d = 1.0 - a - b - c
    _require(d > -1e-9, f"quadrant probabilities must sum to <= 1, got a+b+c={a+b+c}")
    rng = make_rng(seed)
    n = 1 << scale
    m = edge_factor * n
    src = np.zeros(m, dtype=np.int64)
    dst = np.zeros(m, dtype=np.int64)
    for level in range(scale):
        r = rng.random(m)
        # Quadrants: [a | b; c | d] — bit goes to src (row) and dst (col).
        src_bit = (r >= a + b).astype(np.int64)
        dst_bit = ((r >= a) & (r < a + b) | (r >= a + b + c)).astype(np.int64)
        src = (src << 1) | src_bit
        dst = (dst << 1) | dst_bit
    edges = np.column_stack([src, dst])
    edges = edges[edges[:, 0] != edges[:, 1]]
    if symmetrize:
        edges = np.vstack([edges, edges[:, ::-1]])
    return from_edges(n, edges, dedupe=True, drop_self_loops=True,
                      directed=not symmetrize,
                      name=name or f"rmat{scale}",
                      meta={"family": "rmat", "group": "law"})


def web_copy_model(
    n_vertices: int,
    out_degree: int = 7,
    copy_p: float = 0.7,
    *,
    seed: RngLike = None,
    name: str = "",
    symmetrize: bool = True,
) -> CSRGraph:
    """Kumar et al. copying model (LAW web-graph analogue).

    Each new page links to ``out_degree`` targets; with probability
    ``copy_p`` a link copies a link of a random earlier 'prototype' page
    (producing dense bipartite cores and power-law in-degree), otherwise a
    uniform random target.
    """
    _require(n_vertices > out_degree + 1,
             f"web_copy_model needs n > out_degree+1, got {n_vertices}")
    _require(0.0 <= copy_p <= 1.0, "copy_p in [0,1]")
    rng = make_rng(seed)
    adj: list = [[] for _ in range(n_vertices)]
    core = out_degree + 1
    for i in range(core):
        adj[i] = [j for j in range(core) if j != i][:out_degree]
    edges = [(i, j) for i in range(core) for j in adj[i]]
    for v in range(core, n_vertices):
        proto = int(rng.integers(0, v))
        proto_links = adj[proto]
        links: set = set()
        for slot in range(out_degree):
            if proto_links and rng.random() < copy_p:
                links.add(proto_links[slot % len(proto_links)])
            else:
                links.add(int(rng.integers(0, v)))
        links.discard(v)
        adj[v] = sorted(links)
        edges.extend((v, t) for t in adj[v])
    arr = np.asarray(edges, dtype=np.int64)
    if symmetrize:
        arr = np.vstack([arr, arr[:, ::-1]])
    return from_edges(n_vertices, arr, dedupe=True, drop_self_loops=True,
                      directed=not symmetrize,
                      name=name or f"web{n_vertices}",
                      meta={"family": "web", "group": "law"})


# ---------------------------------------------------------------------------
# Intermediate regime
# ---------------------------------------------------------------------------

def citation_graph(
    n_vertices: int,
    refs_per_paper: int = 8,
    recency_bias: float = 4.0,
    *,
    seed: RngLike = None,
    name: str = "",
    symmetrize: bool = True,
) -> CSRGraph:
    """Citation network: papers cite earlier papers with recency bias.

    A DAG by construction before symmetrization (useful for NVG-DFS,
    which is defined on DAGs: pass ``symmetrize=False``).
    """
    _require(n_vertices >= 2, f"citation_graph needs >= 2 papers, got {n_vertices}")
    _require(refs_per_paper >= 1, "refs_per_paper >= 1")
    rng = make_rng(seed)
    edges = []
    for v in range(1, n_vertices):
        k = min(v, refs_per_paper)
        # Beta-distributed ages: most references are recent.
        ages = rng.beta(1.0, recency_bias, size=k)
        targets = np.unique((v - 1 - (ages * v).astype(np.int64)).clip(0, v - 1))
        edges.extend((v, int(t)) for t in targets)
    arr = np.asarray(edges, dtype=np.int64)
    if symmetrize:
        arr = np.vstack([arr, arr[:, ::-1]])
    return from_edges(n_vertices, arr, dedupe=True, drop_self_loops=True,
                      directed=not symmetrize,
                      name=name or f"cit{n_vertices}",
                      meta={"family": "citation", "group": "dimacs10", "dag": not symmetrize})


def co_purchase(
    n_vertices: int,
    n_groups: Optional[int] = None,
    inter_p: float = 0.05,
    *,
    seed: RngLike = None,
    name: str = "",
) -> CSRGraph:
    """Amazon-style co-purchase graph: small cliques (product groups)
    loosely connected (SNAP 'amazon0601' analogue: low degree, moderate
    diameter, strong local clustering)."""
    _require(n_vertices >= 4, f"co_purchase needs >= 4 items, got {n_vertices}")
    rng = make_rng(seed)
    if n_groups is None:
        n_groups = max(1, n_vertices // 6)
    # Product groups are contiguous id runs (catalogue order), so intra-
    # group edges are local and the graph keeps a moderate diameter.
    cuts = np.sort(rng.choice(np.arange(1, n_vertices), size=min(n_groups - 1, n_vertices - 1),
                              replace=False)) if n_groups > 1 else np.array([], dtype=np.int64)
    bounds = np.concatenate([[0], cuts, [n_vertices]])
    edges_parts = []
    for gi in range(len(bounds) - 1):
        members = np.arange(bounds[gi], bounds[gi + 1], dtype=np.int64)
        if members.size >= 2:
            ring = np.column_stack([members, np.roll(members, -1)])
            edges_parts.append(ring)
            if members.size >= 4:
                chord = np.column_stack([members[::2], np.roll(members[::2], -1)])
                edges_parts.append(chord)
    # Inter-group links are mostly local in group-id space (related product
    # categories), which keeps the diameter moderate rather than tiny.
    n_inter = max(1, int(inter_p * n_vertices))
    src = rng.integers(0, n_vertices, size=n_inter)
    span = np.maximum(1, rng.exponential(scale=n_vertices / 40, size=n_inter).astype(np.int64))
    dst = np.clip(src + span, 0, n_vertices - 1)
    inter = np.column_stack([src, dst])
    edges_parts.append(inter[inter[:, 0] != inter[:, 1]])
    edges_parts.append(
        random_spanning_backbone(n_vertices, rng, chain_bias=0.5,
                                 locality_window=max(2, n_vertices // 50))
    )
    edges = np.vstack(edges_parts)
    both = np.vstack([edges, edges[:, ::-1]])
    return from_edges(n_vertices, both, dedupe=True, drop_self_loops=True,
                      name=name or f"copurchase{n_vertices}",
                      meta={"family": "copurchase", "group": "snap"})


# ---------------------------------------------------------------------------
# Connectivity backbone
# ---------------------------------------------------------------------------

def random_spanning_backbone(
    n_vertices: int,
    rng: np.random.Generator,
    *,
    chain_bias: float = 0.5,
    locality_window: int = 0,
) -> np.ndarray:
    """Random spanning-tree arcs ensuring connectivity of a generated graph.

    Each vertex ``v > 0`` attaches either to ``v - 1`` (probability
    ``chain_bias``, extending a chain — raises diameter) or to a random
    earlier vertex.  With ``locality_window > 0`` the random parent is
    drawn from the last ``locality_window`` vertices only, which preserves
    high diameter (road-like backbones); with 0 it is uniform over all
    earlier vertices (creates shortcuts, shallow star-like backbones).
    Returns ``(n_vertices - 1, 2)`` arcs (forward direction only).
    """
    _require(0.0 <= chain_bias <= 1.0, "chain_bias in [0,1]")
    _require(locality_window >= 0, "locality_window >= 0")
    if n_vertices <= 1:
        return np.empty((0, 2), dtype=np.int64)
    v = np.arange(1, n_vertices, dtype=np.int64)
    chain = rng.random(n_vertices - 1) < chain_bias
    if locality_window > 0:
        offs = 1 + (rng.random(n_vertices - 1) * np.minimum(v, locality_window)).astype(np.int64)
        random_parent = v - offs
    else:
        random_parent = (rng.random(n_vertices - 1) * v).astype(np.int64)
    parents = np.where(chain, v - 1, random_parent)
    return np.column_stack([parents, v])
