"""Vertex-ordering transforms.

DFS behaviour (and therefore work stealing) depends on the vertex
labelling: sorted adjacency means "lowest id first", so relabelling a
graph changes which branch every warp dives into.  SuiteSparse graphs
arrive in assorted orders (geometric for meshes, crawl order for webs);
these transforms let experiments control that axis explicitly, and the
ordering ablation benchmark measures its effect on DiggerBees.

All transforms return a relabelled :class:`CSRGraph` plus the
permutation used (``new_id = perm[old_id]``) so results can be mapped
back.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.graphs.csr import CSRGraph
from repro.graphs.properties import bfs_levels
from repro.utils.rng import RngLike, make_rng

__all__ = [
    "random_relabel",
    "bfs_relabel",
    "degree_relabel",
    "ORDERINGS",
    "apply_ordering",
]


def random_relabel(graph: CSRGraph, *, seed: RngLike = None
                   ) -> Tuple[CSRGraph, np.ndarray]:
    """Uniformly random permutation (destroys any locality in the ids)."""
    rng = make_rng(seed)
    perm = rng.permutation(graph.n_vertices).astype(np.int64)
    return graph.permute(perm).with_name(f"{graph.name}#rand"), perm


def bfs_relabel(graph: CSRGraph, root: int = 0
                ) -> Tuple[CSRGraph, np.ndarray]:
    """Label by BFS discovery level from ``root`` (locality-friendly).

    Unreached vertices keep relative order after all reached ones.
    Mirrors the common cache-optimizing preprocessing (e.g. in Ligra and
    Gunrock pipelines).
    """
    level = bfs_levels(graph, root)
    n = graph.n_vertices
    # Sort by (unreached-last, level, old id) — stable and deterministic.
    key = np.where(level < 0, np.iinfo(np.int64).max, level)
    order = np.lexsort((np.arange(n), key))
    perm = np.empty(n, dtype=np.int64)
    perm[order] = np.arange(n)
    return graph.permute(perm).with_name(f"{graph.name}#bfs"), perm


def degree_relabel(graph: CSRGraph, *, descending: bool = True
                   ) -> Tuple[CSRGraph, np.ndarray]:
    """Label by degree (hubs first by default).

    With sorted adjacency this makes every DFS prefer hub neighbours —
    the worst case for stack depth on social graphs.
    """
    deg = graph.degree()
    key = -deg if descending else deg
    order = np.lexsort((np.arange(graph.n_vertices), key))
    perm = np.empty(graph.n_vertices, dtype=np.int64)
    perm[order] = np.arange(graph.n_vertices)
    suffix = "degdesc" if descending else "degasc"
    return graph.permute(perm).with_name(f"{graph.name}#{suffix}"), perm


ORDERINGS = ("natural", "random", "bfs", "degree")


def apply_ordering(graph: CSRGraph, ordering: str, *, seed: RngLike = None,
                   root: int = 0) -> Tuple[CSRGraph, np.ndarray]:
    """Dispatch by ordering name; ``"natural"`` is the identity."""
    if ordering == "natural":
        return graph, np.arange(graph.n_vertices, dtype=np.int64)
    if ordering == "random":
        return random_relabel(graph, seed=seed)
    if ordering == "bfs":
        return bfs_relabel(graph, root=root)
    if ordering == "degree":
        return degree_relabel(graph)
    raise ValueError(f"unknown ordering {ordering!r}; options: {ORDERINGS}")
