"""repro — reproduction of "DiggerBees: DFS Leveraging Hierarchical
Block-Level Stealing on GPUs" (PPoPP '26) on a simulated GPU.

Quick start::

    from repro import collections, diggerbees, validate_traversal

    g = collections.load("euro_osm")
    result = diggerbees(g, root=0)
    report = validate_traversal(g, result.traversal)
    print(result.mteps, report.tree_valid)

Subpackages
-----------
``repro.core``        the paper's contribution (two-level stack, warp DFS,
                      hierarchical stealing, DiggerBees driver)
``repro.sim``         GPU/CPU execution simulators and device models
``repro.graphs``      CSR substrate, generators, corpus, I/O
``repro.baselines``   CKL-PDFS, ACR-PDFS, NVG-DFS, Gunrock/BerryBees BFS
``repro.validate``    reference DFS and output validators
``repro.bench``       benchmark harness regenerating every table/figure
``repro.apps``        applications on the DFS tree (cycles, toposort, SCC)
"""

from repro.errors import (
    BenchmarkError,
    DeadlockError,
    GraphConstructionError,
    GraphFormatError,
    MemoryLimitExceeded,
    ReproError,
    SimulationError,
    ValidationError,
)
from repro.graphs import CSRGraph, from_adjacency, from_edges
from repro.graphs import collections  # noqa: F401  (re-exported module)
from repro.validate import TraversalResult, serial_dfs, validate_traversal

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "CSRGraph",
    "from_edges",
    "from_adjacency",
    "collections",
    "TraversalResult",
    "serial_dfs",
    "validate_traversal",
    "diggerbees",
    "ReproError",
    "GraphFormatError",
    "GraphConstructionError",
    "SimulationError",
    "DeadlockError",
    "MemoryLimitExceeded",
    "ValidationError",
    "BenchmarkError",
]


def diggerbees(graph, root, **kwargs):
    """Run DiggerBees on ``graph`` from ``root`` (lazy import of the core).

    See :func:`repro.core.diggerbees.run_diggerbees` for parameters.
    """
    from repro.core.diggerbees import run_diggerbees

    return run_diggerbees(graph, root, **kwargs)
