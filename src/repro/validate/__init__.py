"""Correctness oracles and output validators (paper Table 2 semantics)."""

from repro.validate.euler import EulerTour, build_euler_tour
from repro.validate.reference import (
    ROOT_PARENT,
    UNVISITED_PARENT,
    TraversalResult,
    dfs_discovery_order,
    reachable_mask,
    serial_dfs,
)
from repro.validate.tree import (
    ValidationReport,
    check_lexicographic,
    check_tree_validity,
    check_visited_matches_reachable,
    dfs_property_violations,
    validate_traversal,
)

__all__ = [
    "EulerTour",
    "build_euler_tour",
    "TraversalResult",
    "serial_dfs",
    "reachable_mask",
    "dfs_discovery_order",
    "ROOT_PARENT",
    "UNVISITED_PARENT",
    "check_tree_validity",
    "check_visited_matches_reachable",
    "dfs_property_violations",
    "check_lexicographic",
    "validate_traversal",
    "ValidationReport",
]
