"""Reference traversals used as correctness oracles.

:func:`serial_dfs` is a direct transcription of the paper's Algorithm 1
(the serial stack-based DFS over CSR); it defines the lexicographic DFS
tree when adjacency lists are sorted.  :func:`reachable_mask` gives the
ground-truth visited set every parallel method must match.
"""

from __future__ import annotations

from dataclasses import dataclass
import numpy as np

from repro.graphs.csr import CSRGraph

__all__ = ["TraversalResult", "serial_dfs", "reachable_mask", "dfs_discovery_order"]


@dataclass(frozen=True)
class TraversalResult:
    """Output of a traversal: the paper's ``visited`` + ``parent`` arrays.

    ``parent[root] == -1``; ``parent[v] == -2`` for unvisited vertices.
    ``order`` is the discovery order (only meaningful for serial DFS and
    NVG-DFS; parallel methods leave it empty).
    """

    root: int
    visited: np.ndarray          # bool, shape (n,)
    parent: np.ndarray           # int64, shape (n,)
    order: np.ndarray            # int64 discovery sequence, possibly empty
    edges_traversed: int = 0     # neighbour inspections (MTEPS numerator)

    @property
    def n_visited(self) -> int:
        return int(np.count_nonzero(self.visited))


UNVISITED_PARENT = -2
ROOT_PARENT = -1


def serial_dfs(graph: CSRGraph, root: int) -> TraversalResult:
    """Algorithm 1 of the paper: serial stack-based DFS over CSR.

    The stack holds ``(node, next_idx)`` pairs; ``next_idx`` is an index
    into ``column_idx`` (i.e. an absolute CSR offset, as in the paper).
    With sorted adjacency lists this produces the unique lexicographically
    ordered DFS tree.
    """
    graph._check_vertex(root)
    n = graph.n_vertices
    rp, ci = graph.row_ptr, graph.column_idx
    visited = np.zeros(n, dtype=bool)
    parent = np.full(n, UNVISITED_PARENT, dtype=np.int64)
    order = []
    edges = 0

    visited[root] = True
    parent[root] = ROOT_PARENT
    order.append(root)
    # Stack of [node, next_idx]; lists are cheaper than tuple churn here.
    stack = [[root, int(rp[root])]]
    while stack:
        top = stack[-1]
        u, i = top
        if i < rp[u + 1]:
            v = int(ci[i])
            top[1] = i + 1
            edges += 1
            if not visited[v]:
                visited[v] = True
                parent[v] = u
                order.append(v)
                stack.append([v, int(rp[v])])
        else:
            stack.pop()
    return TraversalResult(
        root=root,
        visited=visited,
        parent=parent,
        order=np.asarray(order, dtype=np.int64),
        edges_traversed=edges,
    )


def reachable_mask(graph: CSRGraph, root: int) -> np.ndarray:
    """Boolean reachability mask from ``root`` (frontier-vectorized BFS)."""
    from repro.graphs.properties import bfs_levels

    return bfs_levels(graph, root) >= 0


def dfs_discovery_order(parent: np.ndarray, order: np.ndarray) -> np.ndarray:
    """Map vertex id -> discovery rank (or -1), from a traversal's order list."""
    rank = np.full(parent.shape[0], -1, dtype=np.int64)
    rank[order] = np.arange(order.size)
    return rank
