"""Validators for traversal outputs (paper Table 2 semantics).

Three independent checks, per DESIGN.md §4.2:

1. :func:`check_tree_validity` — the ``parent`` array is a rooted spanning
   tree of exactly the reachable set, with every tree edge present in the
   graph.  **Every** parallel DFS run must pass this.
2. :func:`dfs_property_violations` — the strict DFS ancestor/descendant
   property for non-tree edges (undirected graphs).  Serial DFS satisfies
   it exactly; work-stealing parallel DFS may not, and the violation
   fraction is a reported metric, mirroring the unordered-DFS literature.
3. :func:`check_lexicographic` — the tree equals the serial lexicographic
   DFS tree (required only of NVG-DFS).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import ValidationError
from repro.graphs.csr import CSRGraph
from repro.validate.reference import (
    ROOT_PARENT,
    UNVISITED_PARENT,
    TraversalResult,
    reachable_mask,
    serial_dfs,
)

__all__ = [
    "check_tree_validity",
    "check_visited_matches_reachable",
    "dfs_property_violations",
    "check_lexicographic",
    "ValidationReport",
    "validate_traversal",
]


def check_visited_matches_reachable(graph: CSRGraph, result: TraversalResult) -> None:
    """Raise unless ``visited`` equals the true reachable set from the root.

    The raised :class:`ValidationError` carries the *complete* missing and
    extra vertex lists in ``details`` (keys ``missing`` / ``extra``), so
    callers can assert on exactly which vertices were dropped or invented
    rather than parsing the truncated message.
    """
    truth = reachable_mask(graph, result.root)
    if not np.array_equal(truth, result.visited.astype(bool)):
        missing = np.flatnonzero(truth & ~result.visited)
        extra = np.flatnonzero(~truth & result.visited)
        raise ValidationError(
            f"visited set mismatch: {missing.size} reachable-but-unvisited "
            f"(e.g. {missing[:5].tolist()}), {extra.size} visited-but-unreachable "
            f"(e.g. {extra[:5].tolist()})",
            check="visited_mismatch",
            root=int(result.root),
            missing=missing.tolist(),
            extra=extra.tolist(),
        )


def check_tree_validity(graph: CSRGraph, result: TraversalResult) -> None:
    """Raise unless ``parent`` encodes a rooted spanning tree of the visited set.

    Checks, in order: root conventions, parent edges exist in the graph,
    every visited non-root vertex has a visited parent, and parent
    pointers are acyclic (each vertex reaches the root).
    """
    parent = result.parent
    visited = result.visited.astype(bool)
    root = result.root
    n = graph.n_vertices
    if parent.shape != (n,):
        raise ValidationError(
            f"parent has shape {parent.shape}, expected ({n},)",
            check="parent_shape", shape=tuple(parent.shape), expected=(n,))
    if not visited[root]:
        raise ValidationError(f"root {root} not marked visited",
                              check="root_unvisited", root=int(root))
    if parent[root] != ROOT_PARENT:
        raise ValidationError(
            f"parent[root] = {parent[root]}, expected {ROOT_PARENT}",
            check="root_parent", root=int(root), parent=int(parent[root]))

    unvisited_bad = np.flatnonzero(~visited & (parent != UNVISITED_PARENT))
    if unvisited_bad.size:
        raise ValidationError(
            f"{unvisited_bad.size} unvisited vertices have parents set "
            f"(e.g. {unvisited_bad[:5].tolist()})",
            check="unvisited_with_parent", vertices=unvisited_bad.tolist())

    nodes = np.flatnonzero(visited)
    for v in nodes:
        if v == root:
            continue
        p = int(parent[v])
        if p < 0:
            raise ValidationError(f"visited vertex {v} has parent {p}",
                                  check="visited_without_parent",
                                  vertex=int(v), parent=p)
        if not visited[p]:
            raise ValidationError(f"vertex {v}'s parent {p} is not visited",
                                  check="parent_unvisited",
                                  vertex=int(v), parent=p)
        if not graph.has_edge(p, v):
            raise ValidationError(
                f"tree edge ({p} -> {v}) is not a graph edge",
                check="tree_edge_missing", vertex=int(v), parent=p)

    # Acyclicity: iteratively mark vertices whose parent chain reaches root.
    ok = np.zeros(n, dtype=bool)
    ok[root] = True
    for v in nodes:
        if ok[v]:
            continue
        chain = []
        cur = int(v)
        while not ok[cur]:
            chain.append(cur)
            cur = int(parent[cur])
            if cur < 0 or len(chain) > n:
                raise ValidationError(
                    f"parent chain from {v} does not reach the root "
                    f"(cycle or dangling pointer near {chain[-1]})",
                    check="parent_cycle", vertex=int(v), chain=chain[:32])
        ok[chain] = True


def dfs_property_violations(graph: CSRGraph, result: TraversalResult) -> float:
    """Fraction of non-tree edges violating the DFS ancestor/descendant property.

    For an undirected graph, a spanning tree T of the reachable set is a
    *strict* DFS tree iff every graph edge joins an ancestor/descendant
    pair in T.  Returns ``violations / non_tree_edges`` (0.0 when there
    are no non-tree edges).  Serial DFS must return exactly 0.0.
    """
    from repro.validate.euler import build_euler_tour

    parent = result.parent
    visited = result.visited.astype(bool)
    tour = build_euler_tour(parent, result.root, visited)

    non_tree = 0
    violations = 0
    for u, v in graph.iter_edges():
        if u >= v and not graph.directed:
            continue  # count undirected edges once
        if not (visited[u] and visited[v]):
            continue
        if parent[v] == u or parent[u] == v:
            continue  # tree edge
        non_tree += 1
        if not (tour.is_ancestor(u, v) or tour.is_ancestor(v, u)):
            violations += 1
    return violations / non_tree if non_tree else 0.0


def check_lexicographic(graph: CSRGraph, result: TraversalResult) -> None:
    """Raise unless the tree equals the serial lexicographic DFS tree.

    Requires sorted adjacency lists (the canonical CSR form).  This is the
    oracle for NVG-DFS, which promises ordered output.
    """
    ref = serial_dfs(graph, result.root)
    if not np.array_equal(ref.parent, result.parent):
        diff = np.flatnonzero(ref.parent != result.parent)
        raise ValidationError(
            f"tree differs from the lexicographic DFS tree at "
            f"{diff.size} vertices (e.g. vertex {int(diff[0])}: expected parent "
            f"{int(ref.parent[diff[0]])}, got {int(result.parent[diff[0]])})",
            check="lexicographic_tree", vertices=diff.tolist())
    if result.order.size and not np.array_equal(ref.order, result.order):
        raise ValidationError("discovery order differs from lexicographic DFS order",
                              check="lexicographic_order")


@dataclass(frozen=True)
class ValidationReport:
    """Aggregate validation outcome for one traversal."""

    tree_valid: bool
    visited_correct: bool
    dfs_violation_fraction: float
    lexicographic: Optional[bool]  # None when not checked

    @property
    def strict_dfs(self) -> bool:
        return self.tree_valid and self.dfs_violation_fraction == 0.0


def validate_traversal(
    graph: CSRGraph,
    result: TraversalResult,
    *,
    check_lex: bool = False,
) -> ValidationReport:
    """Run all applicable checks and return a :class:`ValidationReport`.

    Tree validity and visited-set correctness raise on failure (they are
    hard requirements); the strict-DFS fraction is informational.
    """
    check_tree_validity(graph, result)
    check_visited_matches_reachable(graph, result)
    frac = dfs_property_violations(graph, result)
    lex: Optional[bool] = None
    if check_lex:
        check_lexicographic(graph, result)
        lex = True
    return ValidationReport(
        tree_valid=True,
        visited_correct=True,
        dfs_violation_fraction=frac,
        lexicographic=lex,
    )
