"""Euler-tour intervals and ancestor queries over parent trees.

The strict-DFS validator, the cycle application, and several tests all
need O(1) ancestor tests over a rooted tree given as a ``parent`` array.
This module provides the shared machinery: an iterative Euler tour
computing discovery/finish intervals, with ``u`` an ancestor of ``v``
iff ``tin[u] <= tin[v] and tout[v] <= tout[u]``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.errors import ValidationError

__all__ = ["EulerTour", "build_euler_tour"]


@dataclass(frozen=True)
class EulerTour:
    """Discovery/finish clocks of a rooted tree (Euler-tour intervals)."""

    root: int
    tin: np.ndarray
    tout: np.ndarray

    def is_ancestor(self, u: int, v: int) -> bool:
        """True iff ``u`` is an ancestor of ``v`` (every vertex is its
        own ancestor)."""
        if self.tin[u] < 0 or self.tin[v] < 0:
            raise ValidationError(
                f"ancestor query on vertex outside the tree ({u}, {v})"
            )
        return bool(self.tin[u] <= self.tin[v] and self.tout[v] <= self.tout[u])

    def depth_order(self) -> np.ndarray:
        """Tree vertices sorted by discovery clock (preorder)."""
        in_tree = np.flatnonzero(self.tin >= 0)
        return in_tree[np.argsort(self.tin[in_tree])]

    def in_tree(self, v: int) -> bool:
        return bool(self.tin[v] >= 0)


def build_euler_tour(parent: Sequence[int], root: int,
                     visited: Sequence[bool]) -> EulerTour:
    """Build an :class:`EulerTour` from a ``parent`` array.

    ``parent[v] >= 0`` is v's tree parent; ``visited`` selects tree
    membership; ``parent[root]`` must be negative.  Runs iteratively so
    road-network-depth trees do not hit the recursion limit.
    """
    parent = np.asarray(parent, dtype=np.int64)
    visited = np.asarray(visited, dtype=bool)
    n = parent.shape[0]
    if not (0 <= root < n):
        raise ValidationError(f"root {root} out of range [0, {n})")
    if not visited[root]:
        raise ValidationError(f"root {root} is not marked visited")
    if parent[root] >= 0:
        raise ValidationError(f"parent[root] must be negative, got {parent[root]}")

    children: List[List[int]] = [[] for _ in range(n)]
    for v in np.flatnonzero(visited):
        p = int(parent[v])
        if p >= 0:
            if not visited[p]:
                raise ValidationError(f"vertex {v} has unvisited parent {p}")
            children[p].append(int(v))

    tin = np.full(n, -1, dtype=np.int64)
    tout = np.full(n, -1, dtype=np.int64)
    clock = 0
    stack = [(int(root), False)]
    while stack:
        node, done = stack.pop()
        if done:
            tout[node] = clock
            clock += 1
            continue
        if tin[node] >= 0:
            raise ValidationError(
                f"vertex {node} reached twice: parent array has a cycle"
            )
        tin[node] = clock
        clock += 1
        stack.append((node, True))
        for c in reversed(children[node]):
            stack.append((c, False))

    uncovered = np.flatnonzero(visited & (tin < 0))
    if uncovered.size:
        raise ValidationError(
            f"{uncovered.size} visited vertices unreachable from the root "
            f"through parent pointers (e.g. {uncovered[:5].tolist()})"
        )
    return EulerTour(root=int(root), tin=tin, tout=tout)
