"""Post-run analyses (load balance, utilization)."""

from repro.analysis.loadbalance import (
    LoadBalanceReport,
    analyze_block_balance,
    balance_improvement,
)
from repro.analysis.report import render_run_report, sparkline
from repro.analysis.utilization import (
    UtilizationReport,
    utilization_report,
    warp_activity_timeline,
)

__all__ = [
    "LoadBalanceReport",
    "analyze_block_balance",
    "balance_improvement",
    "UtilizationReport",
    "utilization_report",
    "warp_activity_timeline",
    "render_run_report",
    "sparkline",
]
