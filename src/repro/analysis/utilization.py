"""Warp/block utilization analysis from run counters and traces.

Complements the Figure 9 load-balance view with the *why* behind the
performance numbers: how much of the simulated time warps spent doing
useful expansion versus stealing, moving stacks around, or idling.  Used
by the ablation benchmarks and handy when tuning cutoffs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.diggerbees import DiggerBeesResult
from repro.sim.device import OpCosts

__all__ = ["UtilizationReport", "utilization_report", "warp_activity_timeline"]


@dataclass(frozen=True)
class UtilizationReport:
    """Approximate cycle budget of one DiggerBees run.

    Cycles are *aggregate across warps* (total warp-cycles consumed per
    activity, reconstructed from counters and the device cost table) —
    the same accounting a profiler's per-SM busy counters would give.
    ``parallelism`` is useful work divided by elapsed time: the average
    number of warps concurrently doing DFS expansion.
    """

    expand_cycles: int
    stack_cycles: int        # flush + refill traffic
    steal_cycles: int        # both levels, successes + failures
    idle_cycles: int         # polling
    elapsed_cycles: int
    n_warps: int

    @property
    def total_busy(self) -> int:
        return self.expand_cycles + self.stack_cycles + self.steal_cycles

    @property
    def parallelism(self) -> float:
        """Average concurrently-expanding warps (<= n_warps)."""
        if self.elapsed_cycles <= 0:
            return 0.0
        return self.expand_cycles / self.elapsed_cycles

    @property
    def utilization(self) -> float:
        """Fraction of the grid's warp-cycles spent expanding."""
        budget = self.elapsed_cycles * self.n_warps
        return self.expand_cycles / budget if budget else 0.0

    def as_dict(self) -> dict:
        return {
            "expand_cycles": self.expand_cycles,
            "stack_cycles": self.stack_cycles,
            "steal_cycles": self.steal_cycles,
            "idle_cycles": self.idle_cycles,
            "elapsed_cycles": self.elapsed_cycles,
            "parallelism": self.parallelism,
            "utilization": self.utilization,
        }


def utilization_report(result: DiggerBeesResult) -> UtilizationReport:
    """Reconstruct the cycle budget of a run from its counters."""
    c = result.counters
    costs: OpCosts = result.device.costs
    # Expansion: one visit_base-ish step per edge window; approximate a
    # window per push plus a window per pop (exhaustion check).
    steps = c.pushes + c.pops
    expand = steps * costs.visit_base + c.edges_traversed * costs.visit_per_edge \
        + c.pushes * (costs.visited_cas + costs.hot_push) + c.pops * costs.hot_pop
    stack = (c.flushes * costs.flush_base
             + c.flush_entries * costs.flush_per_entry
             + c.refills * costs.refill_base
             + c.refill_entries * costs.refill_per_entry)
    fails_intra = c.intra_steal_attempts - c.intra_steal_successes
    fails_inter = c.inter_steal_attempts - c.inter_steal_successes
    steal = (c.intra_steal_successes * costs.steal_intra_base
             + c.intra_steal_entries * costs.steal_intra_per_entry
             + c.inter_steal_successes * costs.steal_inter_base
             + c.inter_steal_entries * costs.steal_inter_per_entry
             + (fails_intra + fails_inter) * costs.steal_fail
             + c.intra_steal_successes * costs.victim_debt_intra
             + c.inter_steal_successes * costs.victim_debt_inter)
    # Idle polls average roughly half the backoff ceiling.
    idle = c.idle_polls * (costs.idle_poll + costs.idle_backoff_max) // 2
    return UtilizationReport(
        expand_cycles=int(expand),
        stack_cycles=int(stack),
        steal_cycles=int(steal),
        idle_cycles=int(idle),
        elapsed_cycles=result.cycles,
        n_warps=result.config.n_warps,
    )


def warp_activity_timeline(result: DiggerBeesResult,
                           bucket_cycles: Optional[int] = None) -> Dict[int, int]:
    """Histogram of *visit* events over time (requires ``trace=True``).

    Returns ``{bucket_start_cycle: visits}``; the ramp-up / drain shape
    of the traversal.  Raises ``ValueError`` when the run kept no trace.
    """
    if result.trace is None:
        raise ValueError("run with DiggerBeesConfig(trace=True) to get a timeline")
    visits = result.trace.filter(kind="visit")
    if not visits:
        return {}
    if bucket_cycles is None:
        bucket_cycles = max(1, result.cycles // 50)
    hist: Dict[int, int] = {}
    for ev in visits:
        bucket = (ev.time // bucket_cycles) * bucket_cycles
        hist[bucket] = hist.get(bucket, 0) + 1
    return dict(sorted(hist.items()))
