"""One-shot text dashboard for a single DiggerBees run.

``render_run_report`` collects everything a performance engineer asks
for after one traversal — throughput, the cycle budget split, steal
traffic at both levels, block balance, and an ASCII activity timeline —
into a single printable report.  Used by examples and handy in a REPL::

    print(render_run_report(run_diggerbees(g, 0, config=cfg)))
"""

from __future__ import annotations

from typing import List

from repro.analysis.loadbalance import analyze_block_balance
from repro.analysis.utilization import utilization_report, warp_activity_timeline
from repro.core.diggerbees import DiggerBeesResult
from repro.utils.tables import format_kv

__all__ = ["render_run_report", "sparkline"]

_BARS = " ▁▂▃▄▅▆▇█"


def sparkline(values: List[float], width: int = 50) -> str:
    """Render a value series as a unicode sparkline of ``width`` chars.

    Values are re-bucketed to ``width`` columns (sums preserved) and
    scaled to eight bar heights; an empty series renders empty.
    """
    if width < 1:
        raise ValueError(f"width must be >= 1, got {width}")
    if not values:
        return ""
    buckets = [0.0] * min(width, len(values))
    for i, v in enumerate(values):
        buckets[i * len(buckets) // len(values)] += float(v)
    top = max(buckets)
    if top <= 0:
        return _BARS[0] * len(buckets)
    return "".join(_BARS[min(8, int(9 * b / top))] for b in buckets)


def render_run_report(result: DiggerBeesResult) -> str:
    """Full text report for one run (see module docstring)."""
    c = result.counters
    cfg = result.config
    lines: List[str] = []
    lines.append(f"=== DiggerBees run report ({result.device.name}, "
                 f"{cfg.n_blocks} blocks x {cfg.warps_per_block} warps"
                 + (f" on {cfg.n_gpus} GPUs" if cfg.n_gpus > 1 else "")
                 + ") ===")
    lines.append(format_kv([
        ("throughput", f"{result.mteps:.1f} MTEPS"),
        ("simulated time", f"{result.seconds * 1e6:.1f} us"
                           f" ({result.cycles} cycles)"),
        ("visited / edges", f"{result.n_visited} / "
                            f"{result.traversal.edges_traversed}"),
    ]))

    util = utilization_report(result)
    total = max(1, util.total_busy + util.idle_cycles)
    lines.append("\ncycle budget (aggregate warp-cycles):")
    lines.append(format_kv([
        ("expanding", f"{util.expand_cycles:>12d}  "
                      f"({util.expand_cycles / total:.0%})"),
        ("stack traffic", f"{util.stack_cycles:>12d}  "
                          f"({util.stack_cycles / total:.0%})"),
        ("stealing", f"{util.steal_cycles:>12d}  "
                     f"({util.steal_cycles / total:.0%})"),
        ("idle polling", f"{util.idle_cycles:>12d}  "
                         f"({util.idle_cycles / total:.0%})"),
        ("avg parallelism", f"{util.parallelism:.1f} warps"),
    ]))

    lines.append("\nstealing:")
    lines.append(format_kv([
        ("intra-block", f"{c.intra_steal_successes} ok / "
                        f"{c.intra_steal_attempts} attempts "
                        f"({c.intra_steal_entries} entries)"),
        ("inter-block", f"{c.inter_steal_successes} ok / "
                        f"{c.inter_steal_attempts} attempts "
                        f"({c.inter_steal_entries} entries)"),
        ("remote (NVLink)", f"{c.remote_steal_successes} ok "
                            f"({c.remote_steal_entries} entries)"),
        ("flush / refill", f"{c.flushes} / {c.refills} batches"),
    ]))

    balance = analyze_block_balance(c, cfg.n_blocks, include_idle=True)
    lines.append("\nblock balance (tasks/block):")
    lines.append(format_kv([
        ("min / median / max", f"{balance.min:.0f} / {balance.median:.0f} "
                               f"/ {balance.max:.0f}"),
        ("coefficient of variation", f"{balance.variation:.2f}"),
        ("active blocks", f"{balance.active_blocks}/{cfg.n_blocks}"),
    ]))

    if result.trace is not None:
        hist = warp_activity_timeline(result)
        if hist:
            lines.append("\nvisit activity over time:")
            lines.append("  " + sparkline(list(hist.values())))
    return "\n".join(lines)
