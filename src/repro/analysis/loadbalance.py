"""Block-level load-balance analysis (paper §4.6, Figure 9).

The paper measures the distribution of *tasks per block* (vertices
expanded by each thread block) and reports min / median / max plus the
coefficient of variation, comparing the baseline random victim selection
against DiggerBees' load-aware two-choice policy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.sim.trace import SimCounters
from repro.utils.stats import coefficient_of_variation, summarize

__all__ = ["LoadBalanceReport", "analyze_block_balance", "balance_improvement"]


@dataclass(frozen=True)
class LoadBalanceReport:
    """Summary of one run's per-block task distribution."""

    tasks: tuple                 # tasks per block, dense
    min: float
    median: float
    max: float
    variation: float             # coefficient of variation ("Var." in Fig 9)
    active_blocks: int           # blocks that processed at least one task

    @property
    def spread(self) -> float:
        """max / max(min, 1): the visual spread of the Fig 9 violins."""
        return self.max / max(self.min, 1.0)


def analyze_block_balance(counters: SimCounters, n_blocks: int,
                          *, include_idle: bool = False) -> LoadBalanceReport:
    """Build a :class:`LoadBalanceReport` from a run's counters.

    ``include_idle=False`` (default) follows the paper's measurement:
    only blocks that received work enter the distribution — otherwise a
    small graph on a large grid reports meaningless zeros.
    """
    dense = counters.block_task_array(n_blocks)
    active = [t for t in dense if t > 0]
    tasks: Sequence[int] = dense if include_idle else (active or [0])
    arr = np.asarray(tasks, dtype=np.float64)
    stats = summarize(arr)
    var = coefficient_of_variation(arr) if arr.sum() > 0 else 0.0
    return LoadBalanceReport(
        tasks=tuple(int(t) for t in tasks),
        min=stats["min"],
        median=stats["median"],
        max=stats["max"],
        variation=var,
        active_blocks=len(active),
    )


def balance_improvement(baseline: LoadBalanceReport,
                        diggerbees: LoadBalanceReport) -> float:
    """Variance-reduction factor (paper: e.g. 3.44x on 'amazon').

    Returns ``baseline.variation / diggerbees.variation``; infinite
    improvement (perfectly balanced run) is capped for reporting.
    """
    if diggerbees.variation <= 0:
        return float("inf") if baseline.variation > 0 else 1.0
    return baseline.variation / diggerbees.variation
