"""Observed output-semantics verification (paper Table 2).

Rather than restating the paper's table, we *measure* it: run every
method on a graph and classify what each actually emitted — a visited
array, a valid DFS tree, lexicographic ordering, per-vertex levels.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.baselines.gpu_bfs import run_gunrock_bfs
from repro.baselines.nvg_dfs import run_nvg_dfs
from repro.baselines.pdfs_cpu import run_acr_pdfs, run_ckl_pdfs
from repro.core.config import DiggerBeesConfig
from repro.core.diggerbees import run_diggerbees
from repro.errors import ValidationError
from repro.graphs import generators as gen
from repro.graphs.csr import CSRGraph
from repro.validate.reference import UNVISITED_PARENT, reachable_mask
from repro.validate.tree import check_lexicographic, check_tree_validity

__all__ = ["observed_semantics"]


def _has_tree(graph: CSRGraph, traversal) -> bool:
    try:
        check_tree_validity(graph, traversal)
    except ValidationError:
        return False
    # A reachability-only output leaves non-root parents unset.
    visited = traversal.visited
    nonroot = visited.copy()
    nonroot[traversal.root] = False
    return bool(np.all(traversal.parent[nonroot] != UNVISITED_PARENT)) \
        if np.any(nonroot) else True


def _is_lex(graph: CSRGraph, traversal) -> bool:
    try:
        check_lexicographic(graph, traversal)
        return True
    except ValidationError:
        return False


def observed_semantics(graph: Optional[CSRGraph] = None) -> List[list]:
    """Return Table 2 rows as measured on ``graph`` (default: a small
    road network where unordered and lexicographic trees differ)."""
    g = graph if graph is not None else gen.road_network(400, seed=3)
    root = 0
    truth = reachable_mask(g, root)

    def mark(flag: bool, label: str = "yes") -> str:
        return label if flag else "N/A"

    cfg = DiggerBeesConfig(n_blocks=2, warps_per_block=4, hot_size=32,
                           hot_cutoff=8, cold_cutoff=8, flush_batch=8,
                           refill_batch=8, cold_reserve=32, seed=3)
    rows = []

    ckl = run_ckl_pdfs(g, root, cores=4, seed=3).traversal
    rows.append(["CKL-PDFS",
                 mark(np.array_equal(ckl.visited, truth)),
                 mark(_has_tree(g, ckl)), "N/A", "N/A"])

    acr = run_acr_pdfs(g, root, cores=4, seed=3).traversal
    rows.append(["ACR-PDFS",
                 mark(np.array_equal(acr.visited, truth)),
                 mark(_has_tree(g, acr)), "N/A", "N/A"])

    nvg = run_nvg_dfs(g, root).traversal
    rows.append(["NVG-DFS",
                 mark(np.array_equal(nvg.visited, truth)),
                 mark(_has_tree(g, nvg)),
                 "ordered" if _is_lex(g, nvg) else "N/A", "N/A"])

    bfs = run_gunrock_bfs(g, root)
    rows.append(["Gunrock/BerryBees",
                 mark(np.array_equal(bfs.traversal.visited, truth)),
                 mark(_has_tree(g, bfs.traversal)), "N/A",
                 mark(bool(np.any(bfs.level >= 0)))])

    db = run_diggerbees(g, root, config=cfg).traversal
    lex = "ordered" if _is_lex(g, db) else "unordered"
    rows.append(["DiggerBees (this work)",
                 mark(np.array_equal(db.visited, truth)),
                 mark(_has_tree(g, db)), lex, "N/A"])
    return rows
