"""``python -m repro.bench`` — regenerate paper tables/figures."""

from repro.bench.cli import main

raise SystemExit(main())
