"""Experiment definitions regenerating every table and figure of §4.

Each ``figN`` / ``tableN`` function runs the corresponding experiment on
the scaled simulator and returns a result object carrying (a) the raw
series, (b) shape metrics matching the paper's claims, and (c) a
``render()`` method that prints the same rows/series the paper reports.
The ``benchmarks/`` tree calls these one-to-one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.loadbalance import (
    LoadBalanceReport,
    analyze_block_balance,
    balance_improvement,
)
from repro.bench.harness import (
    BenchConfig,
    MethodSummary,
    geomean_speedup,
    pick_roots,
    run_graph,
    run_method,
    summarize_method,
)
from repro.core.diggerbees import run_diggerbees
from repro.graphs import collections as col
from repro.graphs.csr import CSRGraph
from repro.graphs.properties import profile_graph
from repro.sim.device import A100, H100, XEON_MAX_9462
from repro.utils.stats import geometric_mean
from repro.utils.tables import format_table

__all__ = [
    "fig5", "fig6", "fig7", "fig8", "fig9", "fig10",
    "table1", "table2", "table3", "table4",
    "Fig5Result", "Fig6Result", "Fig7Result", "Fig8Result",
    "Fig9Result", "Fig10Result",
]

_DFS_ORDER = ("CKL-PDFS", "ACR-PDFS", "NVG-DFS", "DiggerBees")


def _corpus(cfg: BenchConfig, corpus: Optional[Sequence[CSRGraph]]):
    if corpus is not None:
        return list(corpus)
    return col.build_corpus(base_seed=cfg.seed)


# ---------------------------------------------------------------------------
# Figure 5: DiggerBees vs CKL / ACR / NVG over the sweep corpus.
# ---------------------------------------------------------------------------

@dataclass
class Fig5Result:
    rows: List[dict]                      # per graph: edges + method MTEPS
    geomean_vs: Dict[str, float]          # baseline -> DiggerBees speedup
    max_vs: Dict[str, float]
    nvg_failures: int
    n_graphs: int

    def render(self) -> str:
        headers = ["graph", "#edges"] + list(_DFS_ORDER)
        rows = [
            [r["graph"], r["edges"]] + [r[m] for m in _DFS_ORDER]
            for r in self.rows
        ]
        table = format_table(headers, rows, floatfmt=".1f",
                             title="Figure 5 — DFS performance (MTEPS) on "
                                   f"{self.rows[0]['device']}")
        lines = [table, ""]
        for base in ("CKL-PDFS", "ACR-PDFS", "NVG-DFS"):
            lines.append(
                f"DiggerBees vs {base}: geomean {self.geomean_vs[base]:.2f}x, "
                f"max {self.max_vs[base]:.2f}x "
                f"(paper: {dict(zip(_DFS_ORDER, ['1.37x','1.83x','30.18x','-']))[base]} geomean)"
            )
        lines.append(f"NVG-DFS failures: {self.nvg_failures}/{self.n_graphs} "
                     f"graphs (paper: 44/234)")
        return "\n".join(lines)


def fig5(cfg: Optional[BenchConfig] = None,
         corpus: Optional[Sequence[CSRGraph]] = None) -> Fig5Result:
    """DFS comparison over the sweep corpus (paper §4.2)."""
    cfg = cfg or BenchConfig()
    graphs = _corpus(cfg, corpus)
    summaries: Dict[str, List[MethodSummary]] = {m: [] for m in _DFS_ORDER}
    rows = []
    nvg_failures = 0
    for g in graphs:
        per_method = run_graph(list(_DFS_ORDER), g, cfg)
        row = {"graph": g.name, "edges": g.n_edges, "device": cfg.device.name}
        for m in _DFS_ORDER:
            s = summarize_method(per_method[m])
            summaries[m].append(s)
            row[m] = s.mteps
        if summaries["NVG-DFS"][-1].n_failed > 0:
            # The paper counts a graph as failed when its NVG run dies;
            # with multiple roots we count graphs where any root OOMs.
            nvg_failures += 1
        rows.append(row)

    geomeans = {}
    maxima = {}
    db = summaries["DiggerBees"]
    for base in ("CKL-PDFS", "ACR-PDFS", "NVG-DFS"):
        geomeans[base] = geomean_speedup(summaries[base], db)
        ok = {s.graph: s for s in summaries[base] if not s.failed and s.mteps > 0}
        ratios = [d.mteps / ok[d.graph].mteps for d in db if d.graph in ok]
        maxima[base] = max(ratios)
    return Fig5Result(rows=rows, geomean_vs=geomeans, max_vs=maxima,
                      nvg_failures=nvg_failures, n_graphs=len(graphs))


# ---------------------------------------------------------------------------
# Figure 6: 12 representative graphs, 4 DFS + Best BFS.
# ---------------------------------------------------------------------------

@dataclass
class Fig6Result:
    rows: List[dict]          # per graph: method MTEPS + best BFS + regime
    db_wins_deep: List[str]   # deep graphs where DiggerBees beats best BFS
    bfs_wins_shallow: List[str]

    def render(self) -> str:
        headers = (["graph", "regime"] + list(_DFS_ORDER)
                   + ["Best BFS", "DB/BFS"])
        rows = []
        for r in self.rows:
            ratio = (r["DiggerBees"] / r["BestBFS"]) if r["BestBFS"] else 0.0
            rows.append([r["graph"], r["regime"]]
                        + [r[m] for m in _DFS_ORDER]
                        + [r["BestBFS"], ratio])
        return format_table(
            headers, rows, floatfmt=".1f",
            title="Figure 6 — representative graphs (MTEPS); paper shape: "
                  "DiggerBees wins on deep road/mesh graphs, BFS wins on "
                  "shallow social graphs",
        )


def fig6(cfg: Optional[BenchConfig] = None, *, scale: int = 1) -> Fig6Result:
    """Representative-graph comparison incl. best BFS (paper §4.3)."""
    cfg = cfg or BenchConfig()
    rows = []
    db_wins_deep: List[str] = []
    bfs_wins_shallow: List[str] = []
    for g in col.representative_graphs(scale=scale, base_seed=cfg.seed):
        regime = profile_graph(g, seed=cfg.seed).regime
        per_method = run_graph(list(_DFS_ORDER) + ["Gunrock", "BerryBees"],
                               g, cfg)
        row = {"graph": g.name, "regime": regime}
        for m in _DFS_ORDER:
            row[m] = summarize_method(per_method[m]).mteps
        gun = summarize_method(per_method["Gunrock"]).mteps
        bb = summarize_method(per_method["BerryBees"]).mteps
        row["BestBFS"] = max(gun, bb)
        rows.append(row)
        if regime == "deep" and row["DiggerBees"] > row["BestBFS"]:
            db_wins_deep.append(g.name)
        if regime == "shallow" and row["BestBFS"] > row["DiggerBees"]:
            bfs_wins_shallow.append(g.name)
    return Fig6Result(rows=rows, db_wins_deep=db_wins_deep,
                      bfs_wins_shallow=bfs_wins_shallow)


# ---------------------------------------------------------------------------
# Figure 7: A100 vs H100 scalability, DiggerBees vs NVG-DFS.
# ---------------------------------------------------------------------------

@dataclass
class Fig7Result:
    rows: List[dict]
    geomean_scalability: Dict[str, float]   # method -> H100/A100 ratio

    def render(self) -> str:
        headers = ["graph", "#edges", "NVG A100", "NVG H100",
                   "DB A100", "DB H100", "NVG ratio", "DB ratio"]
        rows = [
            [r["graph"], r["edges"], r["nvg_a100"], r["nvg_h100"],
             r["db_a100"], r["db_h100"], r["nvg_ratio"], r["db_ratio"]]
            for r in self.rows
        ]
        table = format_table(headers, rows, floatfmt=".2f",
                             title="Figure 7 — A100 vs H100 scalability")
        sc = self.geomean_scalability
        note = (f"geomean H100/A100: DiggerBees {sc['DiggerBees']:.2f}x, "
                f"NVG-DFS {sc['NVG-DFS']:.2f}x "
                f"(paper: 1.33x vs 1.18x; SM count ratio 1.22x)")
        return table + "\n" + note


def fig7(cfg: Optional[BenchConfig] = None,
         corpus: Optional[Sequence[CSRGraph]] = None) -> Fig7Result:
    """Cross-generation scalability (paper §4.4)."""
    cfg = cfg or BenchConfig()
    graphs = _corpus(cfg, corpus)
    rows = []
    ratios: Dict[str, List[float]] = {"DiggerBees": [], "NVG-DFS": []}
    for g in graphs:
        roots = pick_roots(g, cfg)
        row = {"graph": g.name, "edges": g.n_edges}
        per_dev = {}
        for device in (A100, H100):
            dcfg = cfg.with_(device=device)
            for m in ("DiggerBees", "NVG-DFS"):
                s = summarize_method([run_method(m, g, r, dcfg)
                                      for r in roots])
                per_dev[(m, device.name)] = s.mteps
        row["db_a100"] = per_dev[("DiggerBees", "A100")]
        row["db_h100"] = per_dev[("DiggerBees", "H100")]
        row["nvg_a100"] = per_dev[("NVG-DFS", "A100")]
        row["nvg_h100"] = per_dev[("NVG-DFS", "H100")]
        row["db_ratio"] = (row["db_h100"] / row["db_a100"]
                           if row["db_a100"] else 0.0)
        row["nvg_ratio"] = (row["nvg_h100"] / row["nvg_a100"]
                            if row["nvg_a100"] else 0.0)
        if row["db_ratio"] > 0:
            ratios["DiggerBees"].append(row["db_ratio"])
        if row["nvg_ratio"] > 0:
            ratios["NVG-DFS"].append(row["nvg_ratio"])
        rows.append(row)
    geo = {m: geometric_mean(v) for m, v in ratios.items() if v}
    return Fig7Result(rows=rows, geomean_scalability=geo)


# ---------------------------------------------------------------------------
# Figure 8: breakdown v1 -> v4 on six graphs.
# ---------------------------------------------------------------------------

@dataclass
class Fig8Result:
    rows: List[dict]           # per graph: v1..v4 MTEPS and step ratios

    def render(self) -> str:
        headers = ["graph", "v1", "v2", "v3", "v4",
                   "v2/v1", "v3/v2", "v4/v3"]
        rows = [[r["graph"], r["v1"], r["v2"], r["v3"], r["v4"],
                 r["v2/v1"], r["v3/v2"], r["v4/v3"]] for r in self.rows]
        return format_table(
            headers, rows, floatfmt=".2f",
            title="Figure 8 — breakdown (MTEPS): v1 1-lvl stack/1 block, "
                  "v2 2-lvl stack, v3 +inter-steal half SMs, v4 all SMs",
        )

    def step_geomeans(self) -> Dict[str, float]:
        return {
            k: geometric_mean([r[k] for r in self.rows])
            for k in ("v2/v1", "v3/v2", "v4/v3")
        }


def fig8(cfg: Optional[BenchConfig] = None, *, scale: int = 1,
         graphs: Optional[Sequence[str]] = None) -> Fig8Result:
    """Progressive-version breakdown (paper §4.5)."""
    cfg = cfg or BenchConfig()
    names = list(graphs) if graphs is not None else list(col.BREAKDOWN_NAMES)
    rows = []
    for name in names:
        g = col.load(name, scale=scale, base_seed=cfg.seed)
        roots = pick_roots(g, cfg)
        row = {"graph": name}
        for v in (1, 2, 3, 4):
            vcfg = cfg.diggerbees_config(version=v)
            mteps = float(np.mean([
                run_diggerbees(g, r, config=vcfg, device=cfg.device).mteps
                for r in roots
            ]))
            row[f"v{v}"] = mteps
        row["v2/v1"] = row["v2"] / row["v1"]
        row["v3/v2"] = row["v3"] / row["v2"]
        row["v4/v3"] = row["v4"] / row["v3"]
        rows.append(row)
    return Fig8Result(rows=rows)


# ---------------------------------------------------------------------------
# Figure 9: block-level load balance, random vs two-choice victims.
# ---------------------------------------------------------------------------

@dataclass
class Fig9Result:
    rows: List[dict]   # per graph: baseline/diggerbees reports + improvement

    def render(self) -> str:
        headers = ["graph", "base min", "base med", "base max", "base Var.",
                   "DB min", "DB med", "DB max", "DB Var.", "improve"]
        rows = []
        for r in self.rows:
            b, d = r["baseline"], r["diggerbees"]
            rows.append([r["graph"], b.min, b.median, b.max, b.variation,
                         d.min, d.median, d.max, d.variation,
                         r["improvement"]])
        return format_table(
            headers, rows, floatfmt=".2f",
            title="Figure 9 — tasks/block distribution: random victim "
                  "baseline vs load-aware two-choice (lower Var. better)",
        )


def fig9(cfg: Optional[BenchConfig] = None, *, scale: int = 1,
         graphs: Optional[Sequence[str]] = None,
         repeats: int = 3) -> Fig9Result:
    """Load-balance comparison (paper §4.6).

    Each policy runs ``repeats`` times with different victim-sampling
    seeds; the per-block task counts are pooled, mirroring the paper's
    per-run distribution plots.
    """
    cfg = cfg or BenchConfig()
    names = list(graphs) if graphs is not None else list(col.BREAKDOWN_NAMES)
    rows = []
    for name in names:
        g = col.load(name, scale=scale, base_seed=cfg.seed)
        root = pick_roots(g, cfg)[0]
        reports = {}
        for policy in ("random", "two_choice"):
            pooled: List[int] = []
            for rep in range(repeats):
                pcfg = cfg.diggerbees_config(victim_policy=policy,
                                             seed=cfg.seed + rep)
                res = run_diggerbees(g, root, config=pcfg, device=cfg.device)
                # include_idle: blocks that never received work count as
                # zeros — exactly the "some blocks receive very few"
                # pathology Fig 9 visualizes.
                rep_ = analyze_block_balance(res.counters, pcfg.n_blocks,
                                             include_idle=True)
                pooled.extend(rep_.tasks)
            # Re-summarize the pooled distribution.
            from repro.utils.stats import coefficient_of_variation, summarize

            stats = summarize(pooled)
            reports[policy] = LoadBalanceReport(
                tasks=tuple(pooled),
                min=stats["min"], median=stats["median"], max=stats["max"],
                variation=coefficient_of_variation(pooled),
                active_blocks=sum(1 for t in pooled if t > 0),
            )
        rows.append({
            "graph": name,
            "baseline": reports["random"],
            "diggerbees": reports["two_choice"],
            "improvement": balance_improvement(reports["random"],
                                               reports["two_choice"]),
        })
    return Fig9Result(rows=rows)


# ---------------------------------------------------------------------------
# Figure 10: cutoff sensitivity heatmap.
# ---------------------------------------------------------------------------

@dataclass
class Fig10Result:
    hot_values: Tuple[int, ...]
    cold_values: Tuple[int, ...]
    grids: Dict[str, np.ndarray]      # graph -> normalized perf grid
    default_cell: Tuple[int, int]     # paper default (32, 64) indices

    def render(self) -> str:
        blocks = []
        for name, grid in self.grids.items():
            headers = [f"hot\\cold"] + [str(c) for c in self.cold_values]
            rows = [[str(h)] + [grid[i, j] for j in range(grid.shape[1])]
                    for i, h in enumerate(self.hot_values)]
            blocks.append(format_table(
                headers, rows, floatfmt=".2f",
                title=f"Figure 10 — {name} (normalized to hot=32, cold=64)"))
        return "\n\n".join(blocks)

    def default_is_near_optimal(self, tolerance: float = 0.15) -> bool:
        """Paper claim: the default is within ~tolerance of every grid's max."""
        i, j = self.default_cell
        return all(grid[i, j] >= (1.0 - tolerance) * grid.max()
                   for grid in self.grids.values())


def fig10(cfg: Optional[BenchConfig] = None, *, scale: int = 1,
          graphs: Optional[Sequence[str]] = None,
          hot_values: Sequence[int] = (16, 32, 64),
          cold_values: Sequence[int] = (32, 64, 128)) -> Fig10Result:
    """hot_cutoff x cold_cutoff sensitivity (paper §4.7)."""
    cfg = cfg or BenchConfig()
    names = list(graphs) if graphs is not None else list(col.BREAKDOWN_NAMES)
    hot_values = tuple(hot_values)
    cold_values = tuple(cold_values)
    grids: Dict[str, np.ndarray] = {}
    for name in names:
        g = col.load(name, scale=scale, base_seed=cfg.seed)
        root = pick_roots(g, cfg)[0]
        grid = np.zeros((len(hot_values), len(cold_values)))
        for i, hot in enumerate(hot_values):
            for j, cold in enumerate(cold_values):
                ccfg = cfg.diggerbees_config(hot_cutoff=hot, cold_cutoff=cold)
                res = run_diggerbees(g, root, config=ccfg, device=cfg.device)
                grid[i, j] = res.mteps
        # Normalize to the paper's default configuration cell.
        di = hot_values.index(32) if 32 in hot_values else 0
        dj = cold_values.index(64) if 64 in cold_values else 0
        grid /= grid[di, dj]
        grids[name] = grid
    return Fig10Result(hot_values=hot_values, cold_values=cold_values,
                       grids=grids, default_cell=(di, dj))


# ---------------------------------------------------------------------------
# Tables 1-4.
# ---------------------------------------------------------------------------

def table1() -> str:
    """Platforms and methods (paper Table 1)."""
    rows = [
        [XEON_MAX_9462.name, f"{XEON_MAX_9462.cores} cores",
         f"{XEON_MAX_9462.memory_bytes // 2**30} GB", "CKL-PDFS, ACR-PDFS"],
        [A100.name, f"{A100.sm_count} SMs",
         f"{A100.memory_bytes // 2**30} GB", "NVG-DFS, Gunrock/BerryBees"],
        [H100.name, f"{H100.sm_count} SMs",
         f"{H100.memory_bytes // 2**30} GB", "DiggerBees (this work)"],
    ]
    return format_table(["hardware", "parallelism", "memory", "methods"],
                        rows, title="Table 1 — platforms and methods",
                        aligns=["l", "l", "l", "l"])


def table2(graph: Optional[CSRGraph] = None) -> str:
    """Output semantics per method (paper Table 2), verified by running
    each method on a graph and inspecting what it actually produced."""
    from repro.bench.semantics import observed_semantics

    rows = observed_semantics(graph)
    return format_table(
        ["method", "visited", "DFS tree", "lex-order", "level"],
        rows, title="Table 2 — observed output semantics",
        aligns=["l", "l", "l", "l", "l"])


def table3() -> str:
    """Corpus groups (paper Table 3)."""
    counts = {"dimacs10": 0, "snap": 0, "law": 0}
    for s in col.REPRESENTATIVE_SPECS:
        counts[s.group] += 1
    rows = [[g, counts[g], desc] for g, desc in col.GROUPS.items()]
    return format_table(["group", "representatives", "description"], rows,
                        title="Table 3 — graph collections "
                              "(paper: 151/68/15 graphs)",
                        aligns=["l", "r", "l"])


def table4(*, scale: int = 1, seed: int = 7) -> str:
    """Representative graphs with |V|, |E| (paper Table 4) plus the
    structural-regime columns our substitution argument rests on."""
    rows = []
    for spec in col.REPRESENTATIVE_SPECS:
        g = col.load(spec.name, scale=scale, base_seed=seed)
        p = profile_graph(g, seed=seed)
        rows.append([spec.name, spec.group, spec.paper_analog,
                     p.n_vertices, p.n_edges, p.bfs_levels_from_0, p.regime])
    return format_table(
        ["graph", "group", "stands for", "|V|", "|E|", "BFS levels", "regime"],
        rows, title="Table 4 — representative graphs (scaled stand-ins)",
        aligns=["l", "l", "l", "r", "r", "r", "l"])
