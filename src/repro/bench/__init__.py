"""Benchmark harness and experiments regenerating every table/figure."""

from repro.bench.harness import (
    ALL_METHODS,
    BFS_METHODS,
    BenchConfig,
    DFS_METHODS,
    MethodSummary,
    geomean_speedup,
    pick_roots,
    run_graph,
    run_method,
    summarize_method,
)

__all__ = [
    "BenchConfig",
    "DFS_METHODS",
    "BFS_METHODS",
    "ALL_METHODS",
    "run_method",
    "run_graph",
    "MethodSummary",
    "summarize_method",
    "geomean_speedup",
    "pick_roots",
]
