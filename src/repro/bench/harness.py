"""Benchmark harness: method dispatch, multi-root runs, aggregation.

Mirrors the paper's §4.1 methodology: every method runs from a set of
source vertices (the paper uses 64 GAP-style sources; the default here
is smaller for simulator time) and reports the average MTEPS per
(method, graph, device).  Failures (NVG-DFS memory exhaustion) are
recorded as failed samples, exactly as the paper plots them.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.baselines.gpu_bfs import run_berrybees_bfs, run_gunrock_bfs
from repro.baselines.naive_gpu import run_naive_gpu_dfs
from repro.baselines.nvg_dfs import run_nvg_dfs
from repro.baselines.pdfs_cpu import run_acr_pdfs, run_ckl_pdfs
from repro.baselines.serial import run_serial_dfs
from repro.core.config import DiggerBeesConfig
from repro.core.diggerbees import run_diggerbees
from repro.errors import BenchmarkError, MemoryLimitExceeded
from repro.graphs.csr import CSRGraph
from repro.sim.device import DeviceSpec, H100, XEON_MAX_9462
from repro.sim.metrics import PerfSample
from repro.utils.rng import derive_seed, make_rng
from repro.utils.stats import geometric_mean

__all__ = [
    "BenchConfig",
    "DFS_METHODS",
    "BFS_METHODS",
    "ALL_METHODS",
    "run_method",
    "run_graph",
    "run_sweep",
    "lease_pool",
    "release_pool",
    "MethodSummary",
    "summarize_method",
    "geomean_speedup",
    "pick_roots",
]


@dataclass(frozen=True)
class BenchConfig:
    """Knobs shared by every experiment (DESIGN.md §4.3 calibration).

    ``sim_scale`` shrinks both simulated machines proportionally
    (H100: 132 -> 17 blocks; Xeon: 64 -> 8 cores at the 0.125 default),
    and ``warps_per_block = 8`` keeps the GPU:CPU worker ratio at the
    paper's ~16:1.
    """

    sim_scale: float = 0.125
    warps_per_block: int = 8
    n_roots: int = 2
    seed: int = 7
    device: DeviceSpec = H100
    diggerbees_version: int = 4
    victim_policy: str = "two_choice"
    #: Worker processes for sweep fan-out (1 = in-process, no pool).
    #: Results are jobs-invariant: every sample is a pure function of
    #: (method, graph, root, cfg) and collection preserves task order.
    jobs: int = 1
    #: Lockstep width (1 = scalar execution, today's exact path).
    #: > 1 groups hive-eligible DiggerBees samples that share a graph
    #: into NumPy-batched shards of at most ``batch`` runs each
    #: (:mod:`repro.core.hive`), and Frontier samples likewise into
    #: swarm shards (:mod:`repro.core.swarm`); shards compose with
    #: ``jobs`` as processes x batches.  Samples are batch-invariant:
    #: both lockstep engines are bit-identical to the scalar engines
    #: per run (only measured ``seconds`` amortize the batch wall).
    batch: int = 1

    def with_(self, **kwargs) -> "BenchConfig":
        return replace(self, **kwargs)

    def diggerbees_config(self, version: Optional[int] = None,
                          **overrides) -> DiggerBeesConfig:
        v = version if version is not None else self.diggerbees_version
        kwargs = dict(
            warps_per_block=self.warps_per_block,
            victim_policy=self.victim_policy,
            seed=self.seed,
        )
        kwargs.update(overrides)
        return DiggerBeesConfig.version(
            v, self.device, sim_scale=self.sim_scale, **kwargs,
        )


def pick_roots(graph: CSRGraph, cfg: BenchConfig) -> List[int]:
    """GAP-style deterministic source sampling: prefer vertices with
    outgoing edges (the GAP suite samples non-isolated vertices)."""
    rng = make_rng(derive_seed(cfg.seed, "roots", graph.name))
    deg = graph.degree()
    candidates = np.flatnonzero(deg > 0)
    if candidates.size == 0:
        return [0]
    k = min(cfg.n_roots, candidates.size)
    picked = rng.choice(candidates, size=k, replace=False)
    return [int(v) for v in picked]


# ---------------------------------------------------------------------------
# Method registry.  Each runner: (graph, root, cfg) -> PerfSample.
# ---------------------------------------------------------------------------

def _sample(method: str, graph: CSRGraph, device_name: str, root: int,
            edges: int, cycles: int, seconds: float) -> PerfSample:
    return PerfSample(method=method, graph=graph.name, device=device_name,
                      root=root, edges_traversed=edges, cycles=cycles,
                      seconds=seconds)


def _run_diggerbees(graph, root, cfg: BenchConfig) -> PerfSample:
    res = run_diggerbees(graph, root, config=cfg.diggerbees_config(),
                         device=cfg.device)
    return _sample("DiggerBees", graph, cfg.device.name, root,
                   res.traversal.edges_traversed, res.cycles, res.seconds)


def _run_ckl(graph, root, cfg: BenchConfig) -> PerfSample:
    res = run_ckl_pdfs(graph, root, sim_scale=cfg.sim_scale, seed=cfg.seed)
    return _sample("CKL-PDFS", graph, res.device.name, root,
                   res.traversal.edges_traversed, res.cycles, res.seconds)


def _run_acr(graph, root, cfg: BenchConfig) -> PerfSample:
    res = run_acr_pdfs(graph, root, sim_scale=cfg.sim_scale, seed=cfg.seed)
    return _sample("ACR-PDFS", graph, res.device.name, root,
                   res.traversal.edges_traversed, res.cycles, res.seconds)


def _run_nvg(graph, root, cfg: BenchConfig) -> PerfSample:
    try:
        res = run_nvg_dfs(graph, root, device=cfg.device,
                          sim_scale=cfg.sim_scale)
    except MemoryLimitExceeded as exc:
        return PerfSample.failure("NVG-DFS", graph.name, cfg.device.name,
                                  root, str(exc))
    return _sample("NVG-DFS", graph, cfg.device.name, root,
                   res.traversal.edges_traversed, res.cycles, res.seconds)


def _run_gunrock(graph, root, cfg: BenchConfig) -> PerfSample:
    res = run_gunrock_bfs(graph, root, device=cfg.device,
                          sim_scale=cfg.sim_scale)
    return _sample("Gunrock", graph, cfg.device.name, root,
                   res.traversal.edges_traversed, res.cycles, res.seconds)


def _run_berrybees(graph, root, cfg: BenchConfig) -> PerfSample:
    res = run_berrybees_bfs(graph, root, device=cfg.device,
                            sim_scale=cfg.sim_scale)
    return _sample("BerryBees", graph, cfg.device.name, root,
                   res.traversal.edges_traversed, res.cycles, res.seconds)


def _run_naive_gpu(graph, root, cfg: BenchConfig) -> PerfSample:
    warps = max(1, int(cfg.device.sm_count * cfg.sim_scale)
                * cfg.warps_per_block)
    res = run_naive_gpu_dfs(graph, root, n_warps=warps, device=cfg.device)
    return _sample("Naive-GPU-DFS", graph, cfg.device.name, root,
                   res.traversal.edges_traversed, res.cycles, res.seconds)


def _run_serial(graph, root, cfg: BenchConfig) -> PerfSample:
    res = run_serial_dfs(graph, root, device=XEON_MAX_9462)
    return _sample("Serial-DFS", graph, res.device.name, root,
                   res.traversal.edges_traversed, res.cycles, res.seconds)


def _run_frontier_method(graph, root, cfg: BenchConfig) -> PerfSample:
    # Real host traversal, not a device simulation: seconds is measured
    # wall clock and "cycles" has no meaning (recorded as 0).  Under
    # ``batch > 1`` these samples are regrouped into lockstep swarm
    # shards (see ``_fan_out_batched``) with identical per-root results.
    from repro.core.frontier import run_frontier

    res = run_frontier(graph, root)
    return _sample("Frontier", graph, "host", root,
                   res.edges_scanned, 0, res.seconds)


DFS_METHODS: Dict[str, Callable] = {
    "CKL-PDFS": _run_ckl,
    "ACR-PDFS": _run_acr,
    "NVG-DFS": _run_nvg,
    "DiggerBees": _run_diggerbees,
}
BFS_METHODS: Dict[str, Callable] = {
    "Gunrock": _run_gunrock,
    "BerryBees": _run_berrybees,
}
ALL_METHODS: Dict[str, Callable] = {
    **DFS_METHODS, **BFS_METHODS,
    "Serial-DFS": _run_serial,
    "Naive-GPU-DFS": _run_naive_gpu,
    "Frontier": _run_frontier_method,
}


def run_method(method: str, graph: CSRGraph, root: int,
               cfg: Optional[BenchConfig] = None) -> PerfSample:
    """Run one method once; unknown names raise :class:`BenchmarkError`."""
    cfg = cfg or BenchConfig()
    if method not in ALL_METHODS:
        raise BenchmarkError(
            f"unknown method {method!r}; available: {sorted(ALL_METHODS)}"
        )
    return ALL_METHODS[method](graph, root, cfg)


#: Worker-side cache of graphs attached from shared memory, keyed by the
#: first segment name (unique per export).  Bounded: a sweep touches a
#: handful of graphs, but a long-lived worker in a persistent pool must
#: not accumulate mappings without limit.
_WORKER_GRAPH_CACHE: Dict[str, tuple] = {}
_WORKER_GRAPH_CACHE_MAX = 32


def _resolve_task_graph(graph):
    """Turn a shared-memory spec back into a graph (workers only)."""
    from repro.graphs.shm import SPEC_KEY, attach_csr

    if not (isinstance(graph, dict) and graph.get(SPEC_KEY)):
        return graph
    key = graph["segments"][0][0]
    hit = _WORKER_GRAPH_CACHE.get(key)
    if hit is not None:
        return hit[0]
    attached, handles = attach_csr(graph)
    if len(_WORKER_GRAPH_CACHE) >= _WORKER_GRAPH_CACHE_MAX:
        # FIFO eviction; the handles drop with the entry and the
        # mapping is released when the last reference dies.
        _WORKER_GRAPH_CACHE.pop(next(iter(_WORKER_GRAPH_CACHE)))
    _WORKER_GRAPH_CACHE[key] = (attached, handles)
    return attached


def _execute_task(task) -> PerfSample:
    """Module-level worker (picklable) for the process-pool fan-out."""
    method, graph, root, cfg = task
    return ALL_METHODS[method](_resolve_task_graph(graph), root, cfg)


def _hive_samples(graph, roots: List[int], cfg: BenchConfig,
                  ) -> List[PerfSample]:
    """Run one lockstep hive shard; one sample per root, in order."""
    from repro.core.hive import run_hive

    dbc = cfg.diggerbees_config()
    results = run_hive(graph, [(r, dbc) for r in roots], device=cfg.device)
    return [
        _sample("DiggerBees", graph, cfg.device.name, root,
                res.traversal.edges_traversed, res.cycles, res.seconds)
        for root, res in zip(roots, results)
    ]


def _swarm_samples(graph, roots: List[int], cfg: BenchConfig,
                   ) -> List[PerfSample]:
    """Run one lockstep swarm shard; one sample per root, in order.

    :func:`repro.core.swarm.run_swarm` amortizes the batch wall over its
    lanes, so each sample's ``seconds`` is the per-root cost the shard
    actually paid — the swarm analogue of the hive's per-run seconds.
    """
    from repro.core.swarm import run_swarm

    results = run_swarm(graph, roots)
    return [
        _sample("Frontier", graph, "host", root,
                res.edges_scanned, 0, res.seconds)
        for root, res in zip(roots, results)
    ]


def _execute_unit(unit) -> List[PerfSample]:
    """Module-level worker for the batched fan-out.

    A unit is ``("one", task)`` (a plain single sample),
    ``("hive", graph, roots, cfg)`` (a lockstep DFS shard) or
    ``("swarm", graph, roots, cfg)`` (a lockstep frontier shard); either
    way the result is the unit's samples in shard order.
    """
    if unit[0] == "hive":
        _, graph, roots, cfg = unit
        return _hive_samples(_resolve_task_graph(graph), roots, cfg)
    if unit[0] == "swarm":
        _, graph, roots, cfg = unit
        return _swarm_samples(_resolve_task_graph(graph), roots, cfg)
    return [_execute_task(unit[1])]


#: Persistent fan-out pool.  Spinning up a ProcessPoolExecutor per call
#: costs worker spawns plus interpreter warm-up; sweeps issue many
#: fan-outs back to back, so the pool lives across calls and is resized
#: only when ``jobs`` changes.  ``atexit`` tears it down.
#:
#: Concurrent users (sweep threads, the :mod:`repro.serve` daemon) lease
#: the pool through :func:`lease_pool`/:func:`release_pool`.  A resize
#: while leases are outstanding *retires* the current pool instead of
#: shutting it down: already-submitted work keeps running on the old
#: executor, which is reclaimed when its last lease is released.  The
#: historical code shut the old pool down eagerly, so a resize racing an
#: in-flight submit raised "cannot schedule new futures after shutdown"
#: and dropped that fan-out on the floor
#: (``tests/bench/test_harness_resize.py`` is the regression test).


class _PoolHandle:
    """One leased ProcessPoolExecutor generation."""

    __slots__ = ("executor", "jobs", "users", "retired")

    def __init__(self, jobs: int):
        from concurrent.futures import ProcessPoolExecutor

        self.executor = ProcessPoolExecutor(max_workers=jobs)
        self.jobs = jobs
        self.users = 0
        self.retired = False


_POOL_LOCK = threading.Lock()
_HANDLE: Optional[_PoolHandle] = None
_ATEXIT_REGISTERED = False


def lease_pool(jobs: int) -> _PoolHandle:
    """Borrow the persistent pool, (re)sized to ``jobs`` workers.

    Returns a handle whose ``.executor`` stays submittable until the
    matching :func:`release_pool` — even if another thread resizes the
    pool in between.  Every lease must be released exactly once.
    """
    global _HANDLE, _ATEXIT_REGISTERED
    with _POOL_LOCK:
        if _HANDLE is not None and _HANDLE.jobs != jobs:
            _retire_locked(_HANDLE)
            _HANDLE = None
        if _HANDLE is None:
            _HANDLE = _PoolHandle(jobs)
            if not _ATEXIT_REGISTERED:
                import atexit

                atexit.register(_shutdown_pool)
                _ATEXIT_REGISTERED = True
        _HANDLE.users += 1
        return _HANDLE


def release_pool(handle: _PoolHandle, *, broken: bool = False) -> None:
    """Return a lease.  ``broken=True`` marks the executor unusable (a
    killed worker poisons every later submit on the same executor), so
    the next lease starts a fresh pool while other current holders
    drain and release this one."""
    global _HANDLE
    with _POOL_LOCK:
        handle.users -= 1
        if broken:
            handle.retired = True
            if _HANDLE is handle:
                _HANDLE = None
        if handle.retired and handle.users <= 0:
            # Last holder reclaims the retired generation.  Pending
            # futures of a healthy retirement still run to completion
            # (no cancel); a broken pool cancels what it can.
            handle.executor.shutdown(wait=False, cancel_futures=broken)


def _retire_locked(handle: _PoolHandle) -> None:
    handle.retired = True
    if handle.users <= 0:
        handle.executor.shutdown(wait=False)


def _shutdown_pool() -> None:
    global _HANDLE
    with _POOL_LOCK:
        if _HANDLE is not None:
            _HANDLE.retired = True
            _HANDLE.executor.shutdown(wait=False, cancel_futures=True)
            _HANDLE = None


def _fan_out(tasks: List[tuple], jobs: int, batch: int = 1,
             ) -> List[PerfSample]:
    """Run (method, graph, root, cfg) tasks, preserving task order.

    Every task is an independent, deterministic simulation — each method
    derives its randomness from ``cfg.seed`` (and the per-sample stream
    identified by (method, graph, root), cf. ``utils.rng.derive_seed`` in
    ``pick_roots``) — so executing them across a
    :class:`~concurrent.futures.ProcessPoolExecutor` and collecting with
    order-preserving ``Executor.map`` yields byte-identical aggregates
    for any ``jobs`` value.

    ``batch`` > 1 adds the third execution tier: hive-eligible
    DiggerBees samples sharing a graph are grouped into lockstep shards
    of at most ``batch`` runs (:func:`repro.core.hive.run_hive`) and
    the shards — plus every remaining single-sample task — fan out
    across the same pool, so the sharding composes with ``jobs`` as
    processes x batches.  Samples are identical for any ``batch``: the
    hive engine is bit-exact per run regardless of batch composition.
    ``batch <= 1`` takes exactly the historical scalar path.

    Graph payloads are handed to workers zero-copy: each distinct graph
    is exported once into shared memory (:mod:`repro.graphs.shm`) and
    tasks carry only a tiny spec; workers attach and cache per graph.
    Where shared memory is unavailable the graphs are pickled into the
    tasks as before — results are identical either way.
    """
    if batch > 1 and len(tasks) > 1:
        return _fan_out_batched(tasks, jobs, batch)
    if jobs <= 1 or len(tasks) <= 1:
        return [_execute_task(t) for t in tasks]
    from repro.graphs.shm import export_csr

    exported: Dict[int, object] = {}  # id(graph) -> SharedCSR
    try:
        try:
            wire_tasks = []
            for method, graph, root, cfg in tasks:
                handle = exported.get(id(graph))
                if handle is None:
                    handle = export_csr(graph)
                    exported[id(graph)] = handle
                wire_tasks.append((method, handle.spec, root, cfg))
        except Exception:
            # No shared memory here (permissions, exotic platform):
            # fall back to pickling the graphs into the tasks.
            for handle in exported.values():
                handle.close()
            exported = {}
            wire_tasks = tasks
        handle = lease_pool(jobs)
        try:
            out = list(handle.executor.map(_execute_task, wire_tasks))
        except Exception:
            # A broken pool (killed worker) poisons every later map on
            # the same executor — drop it so the next lease starts clean.
            release_pool(handle, broken=True)
            raise
        release_pool(handle)
        return out
    finally:
        # Unlink after the batch: attached workers keep their (cached)
        # mappings; the names disappear so nothing leaks.
        for handle in exported.values():
            handle.close()


def _wire_graph(graph, exported: Dict[int, object]):
    """Swap a graph for its shared-memory spec, exporting once per graph."""
    from repro.graphs.shm import export_csr

    handle = exported.get(id(graph))
    if handle is None:
        handle = export_csr(graph)
        exported[id(graph)] = handle
    return handle.spec


def _fan_out_batched(tasks: List[tuple], jobs: int, batch: int,
                     ) -> List[PerfSample]:
    """Batched fan-out: carve lockstep shards, execute units, reassemble.

    Hive-eligible DiggerBees tasks are grouped per (graph, cfg) and cut
    into hive shards of at most ``batch`` roots; Frontier tasks sharing
    a graph are grouped the same way into swarm shards
    (:func:`repro.core.swarm.run_swarm` — the bit-matrix lockstep
    analogue).  Single-root shards and every non-eligible task run as
    plain scalar units.  Units execute in-process (``jobs <= 1``) or
    across the persistent pool, and each sample lands back at its
    original task index, so the returned list is positionally identical
    to the scalar fan-out (swarm lanes are bit-identical to single-root
    frontier runs; only ``seconds`` reflects the amortized batch wall).
    """
    from repro.core.hive import hive_eligible

    groups: Dict[tuple, List[int]] = {}
    for i, (method, graph, root, cfg) in enumerate(tasks):
        if (method == "DiggerBees"
                and hive_eligible(cfg.diggerbees_config())):
            groups.setdefault(("hive", id(graph), id(cfg)), []).append(i)
        elif method == "Frontier":
            # The frontier engine takes no per-task config: one shard
            # per graph is always mergeable.
            groups.setdefault(("swarm", id(graph)), []).append(i)
    grouped = {i for idxs in groups.values() for i in idxs}

    units: List[tuple] = []   # ("one", task) | (kind, graph, roots, cfg)
    owners: List[List[int]] = []  # original task indices per unit
    for i, task in enumerate(tasks):
        if i not in grouped:
            units.append(("one", task))
            owners.append([i])
    for key, idxs in groups.items():
        kind = key[0]
        for lo in range(0, len(idxs), batch):
            chunk = idxs[lo:lo + batch]
            if len(chunk) == 1:  # no lockstep partner: skip slab setup
                units.append(("one", tasks[chunk[0]]))
            else:
                _, graph, _, cfg = tasks[chunk[0]]
                units.append(
                    (kind, graph, [tasks[j][2] for j in chunk], cfg))
            owners.append(chunk)

    if jobs <= 1 or len(units) <= 1:
        unit_results = [_execute_unit(u) for u in units]
    else:
        exported: Dict[int, object] = {}
        try:
            try:
                wire_units = []
                for u in units:
                    if u[0] in ("hive", "swarm"):
                        kind, graph, roots, cfg = u
                        wire_units.append(
                            (kind, _wire_graph(graph, exported), roots,
                             cfg))
                    else:
                        method, graph, root, cfg = u[1]
                        wire_units.append(
                            ("one", (method, _wire_graph(graph, exported),
                                     root, cfg)))
            except Exception:
                # No shared memory here: pickle the graphs instead.
                for handle in exported.values():
                    handle.close()
                exported = {}
                wire_units = units
            handle = lease_pool(jobs)
            try:
                unit_results = list(handle.executor.map(_execute_unit,
                                                        wire_units))
            except Exception:
                release_pool(handle, broken=True)
                raise
            release_pool(handle)
        finally:
            for handle in exported.values():
                handle.close()

    out: List[Optional[PerfSample]] = [None] * len(tasks)
    for idxs, samples in zip(owners, unit_results):
        for j, s in zip(idxs, samples):
            out[j] = s
    return out


def run_graph(methods: Sequence[str], graph: CSRGraph,
              cfg: Optional[BenchConfig] = None,
              roots: Optional[Sequence[int]] = None,
              jobs: Optional[int] = None,
              batch: Optional[int] = None,
              ) -> Dict[str, List[PerfSample]]:
    """Run several methods over the same root set on one graph.

    ``jobs`` (default: ``cfg.jobs``) > 1 fans the independent
    (method, root) samples across worker processes; ``batch`` (default:
    ``cfg.batch``) > 1 additionally runs hive-eligible DiggerBees
    samples in lockstep shards.  Results are identical to the serial
    scalar path either way (see :func:`_fan_out`).
    """
    cfg = cfg or BenchConfig()
    roots = list(roots) if roots is not None else pick_roots(graph, cfg)
    n_jobs = cfg.jobs if jobs is None else jobs
    n_batch = cfg.batch if batch is None else batch
    unknown = [m for m in methods if m not in ALL_METHODS]
    if unknown:
        raise BenchmarkError(
            f"unknown method(s) {unknown}; available: {sorted(ALL_METHODS)}"
        )
    tasks = [(m, graph, r, cfg) for m in methods for r in roots]
    flat = _fan_out(tasks, n_jobs, n_batch)
    n = len(roots)
    return {
        m: flat[i * n:(i + 1) * n]
        for i, m in enumerate(methods)
    }


def run_sweep(methods: Sequence[str], graphs: Sequence[CSRGraph],
              cfg: Optional[BenchConfig] = None,
              jobs: Optional[int] = None,
              batch: Optional[int] = None,
              ) -> Dict[str, Dict[str, List[PerfSample]]]:
    """Run a full (graph x method x root) sweep, optionally in parallel.

    Fans *all* samples of the sweep into one task list so the pool stays
    saturated across graph boundaries (a per-graph pool would drain at
    each graph's tail).  ``batch`` (default: ``cfg.batch``) > 1 runs
    hive-eligible DiggerBees samples as lockstep shards, composing with
    ``jobs`` as processes x batches.  Returns
    ``{graph.name: {method: [samples]}}`` with the same contents for
    any ``jobs``/``batch`` value.
    """
    cfg = cfg or BenchConfig()
    n_jobs = cfg.jobs if jobs is None else jobs
    n_batch = cfg.batch if batch is None else batch
    unknown = [m for m in methods if m not in ALL_METHODS]
    if unknown:
        raise BenchmarkError(
            f"unknown method(s) {unknown}; available: {sorted(ALL_METHODS)}"
        )
    per_graph_roots = [pick_roots(g, cfg) for g in graphs]
    tasks = [
        (m, g, r, cfg)
        for g, roots in zip(graphs, per_graph_roots)
        for m in methods
        for r in roots
    ]
    flat = _fan_out(tasks, n_jobs, n_batch)
    out: Dict[str, Dict[str, List[PerfSample]]] = {}
    i = 0
    for g, roots in zip(graphs, per_graph_roots):
        per_method: Dict[str, List[PerfSample]] = {}
        for m in methods:
            per_method[m] = flat[i:i + len(roots)]
            i += len(roots)
        out[g.name] = per_method
    return out


# ---------------------------------------------------------------------------
# Aggregation.
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class MethodSummary:
    """Per-(method, graph) aggregate over roots."""

    method: str
    graph: str
    mteps: float          # mean over successful roots; 0.0 if all failed
    n_roots: int
    n_failed: int

    @property
    def failed(self) -> bool:
        return self.n_failed == self.n_roots


def summarize_method(samples: Sequence[PerfSample]) -> MethodSummary:
    """Average a method's root samples (paper: mean over sources)."""
    if not samples:
        raise BenchmarkError("cannot summarize an empty sample list")
    ok = [s for s in samples if not s.failed]
    mteps = float(np.mean([s.mteps for s in ok])) if ok else 0.0
    return MethodSummary(
        method=samples[0].method,
        graph=samples[0].graph,
        mteps=mteps,
        n_roots=len(samples),
        n_failed=len(samples) - len(ok),
    )


def geomean_speedup(baseline: Sequence[MethodSummary],
                    candidate: Sequence[MethodSummary]) -> float:
    """Geometric-mean speedup of candidate over baseline across graphs.

    Pairs by graph name; graphs where either side failed are excluded
    (the paper's treatment of NVG-DFS failures).
    """
    base = {s.graph: s for s in baseline}
    ratios = []
    for cand in candidate:
        b = base.get(cand.graph)
        if b is None or b.failed or cand.failed or b.mteps <= 0:
            continue
        ratios.append(cand.mteps / b.mteps)
    if not ratios:
        raise BenchmarkError("no comparable (non-failed) graph pairs")
    return geometric_mean(ratios)
