"""Fixed engine micro-sweep with machine-readable output.

``python -m repro.bench micro`` runs four fixed DiggerBees simulations
(two road networks, a preferential-attachment graph and a Delaunay mesh
— the structural regimes that stress different engine paths), and writes
``BENCH_engine.json`` with wall-time, simulated cycles, and steps/sec
per case.  That file seeds the performance trajectory: future perf PRs
compare against the recorded baseline
(``benchmarks/baseline_micro.json``) and the run **fails** when

* any case regresses more than ``REGRESSION_FACTOR`` (2x) in wall time
  (the perf-smoke gate), or
* any case's simulated ``cycles``/``steps`` differ from the baseline —
  the determinism contract (same seed => identical schedule) has been
  broken, which is a correctness bug, not a perf regression.

The sweep is intentionally single-process so the numbers measure the
engine fast path, not pool scaling; repeat counts are small because only
the per-case *minimum* wall time is compared (robust to scheduler
noise).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.config import DiggerBeesConfig
from repro.core.diggerbees import run_diggerbees
from repro.graphs import generators as gen
from repro.utils.profiling import PhaseTimer, profile_to, steps_per_second

__all__ = [
    "MICRO_CASES",
    "REGRESSION_FACTOR",
    "run_micro",
    "check_against_baseline",
    "main",
]

#: Wall-time factor over baseline at which the perf-smoke gate fails.
REGRESSION_FACTOR = 2.0

#: (name, graph builder, engine config) — fixed forever; changing a case
#: invalidates the recorded baseline.
MICRO_CASES: Tuple[Tuple[str, Callable, DiggerBeesConfig], ...] = (
    ("road1000", lambda: gen.road_network(1000, seed=1),
     DiggerBeesConfig(n_blocks=4, warps_per_block=4, seed=1)),
    ("road2500", lambda: gen.road_network(2500, seed=2),
     DiggerBeesConfig(n_blocks=4, warps_per_block=4, seed=2)),
    ("pa2000", lambda: gen.preferential_attachment(2000, m=6, seed=3),
     DiggerBeesConfig(n_blocks=8, warps_per_block=4, seed=3)),
    ("mesh1500", lambda: gen.delaunay_mesh(1500, seed=4),
     DiggerBeesConfig(n_blocks=4, warps_per_block=8, seed=4)),
)


def run_micro(repeats: int = 3,
              profile_path: Optional[str] = None) -> Dict:
    """Run the fixed micro-sweep; returns the ``BENCH_engine.json`` payload.

    Per case: best-of-``repeats`` wall time, plus the (deterministic)
    simulated cycles and step count.  Graph generation is timed as its
    own phase and excluded from per-case wall times.
    """
    timer = PhaseTimer()
    cases: List[Dict] = []
    with profile_to(profile_path):
        for name, build, cfg in MICRO_CASES:
            with timer.phase("generate"):
                graph = build()
            best_wall = float("inf")
            result = None
            with timer.phase("simulate"):
                for _ in range(max(1, repeats)):
                    t0 = time.perf_counter()
                    result = run_diggerbees(graph, 0, config=cfg)
                    best_wall = min(best_wall, time.perf_counter() - t0)
            cases.append({
                "name": name,
                "wall_seconds": best_wall,
                "cycles": result.cycles,
                "steps": result.engine.steps,
                "steps_per_second": steps_per_second(result.engine.steps,
                                                     best_wall),
            })
    return {
        "bench": "engine_micro",
        "repeats": repeats,
        "cases": cases,
        "total_wall_seconds": sum(c["wall_seconds"] for c in cases),
        "phases": timer.as_dict(),
    }


def check_against_baseline(result: Dict, baseline: Dict,
                           factor: float = REGRESSION_FACTOR) -> List[str]:
    """Compare a run against the recorded baseline; returns problems.

    An empty list means the gate passes.  Determinism mismatches
    (cycles/steps) and >``factor`` wall-time regressions are reported;
    cases absent from the baseline are ignored (new cases need a baseline
    update first).
    """
    problems: List[str] = []
    base_cases = {c["name"]: c for c in baseline.get("cases", [])}
    for case in result["cases"]:
        base = base_cases.get(case["name"])
        if base is None:
            continue
        if case["cycles"] != base["cycles"] or case["steps"] != base["steps"]:
            problems.append(
                f"{case['name']}: schedule drift — cycles/steps "
                f"{case['cycles']}/{case['steps']} vs baseline "
                f"{base['cycles']}/{base['steps']} (determinism contract "
                f"broken)"
            )
        limit = base["wall_seconds"] * factor
        if case["wall_seconds"] > limit:
            problems.append(
                f"{case['name']}: wall time {case['wall_seconds']:.4f}s "
                f"exceeds {factor:.1f}x baseline "
                f"({base['wall_seconds']:.4f}s)"
            )
    return problems


def default_baseline_path() -> pathlib.Path:
    """``benchmarks/baseline_micro.json`` relative to the repo root."""
    return (pathlib.Path(__file__).resolve().parents[3]
            / "benchmarks" / "baseline_micro.json")


def render(result: Dict) -> str:
    lines = [f"{'case':<10s} {'wall(s)':>9s} {'cycles':>10s} {'steps':>7s} "
             f"{'steps/s':>10s}"]
    for c in result["cases"]:
        lines.append(
            f"{c['name']:<10s} {c['wall_seconds']:9.4f} {c['cycles']:>10d} "
            f"{c['steps']:>7d} {c['steps_per_second']:>10.0f}"
        )
    lines.append(f"total wall: {result['total_wall_seconds']:.4f}s")
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench micro",
        description="Fixed engine micro-sweep (perf-smoke gate).",
    )
    parser.add_argument("--quick", action="store_true",
                        help="single repeat per case")
    parser.add_argument("--json", type=pathlib.Path,
                        default=pathlib.Path("BENCH_engine.json"),
                        help="output path for the machine-readable result")
    parser.add_argument("--baseline", type=pathlib.Path, default=None,
                        help="baseline JSON to gate against "
                             "(default: benchmarks/baseline_micro.json)")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline with this run's numbers")
    parser.add_argument("--no-check", action="store_true",
                        help="emit results without gating")
    parser.add_argument("--profile", metavar="PATH", default=None,
                        help="dump cProfile stats of the sweep to PATH")
    args = parser.parse_args(argv)

    result = run_micro(repeats=1 if args.quick else 3,
                       profile_path=args.profile)
    args.json.write_text(json.dumps(result, indent=1) + "\n")
    print(render(result))
    print(f"[wrote {args.json}]")

    baseline_path = args.baseline or default_baseline_path()
    if args.update_baseline:
        baseline_path.parent.mkdir(parents=True, exist_ok=True)
        baseline_path.write_text(json.dumps(result, indent=1) + "\n")
        print(f"[baseline updated: {baseline_path}]")
        return 0
    if args.no_check:
        return 0
    if not baseline_path.exists():
        print(f"[no baseline at {baseline_path}; run with --update-baseline "
              f"to record one]", file=sys.stderr)
        return 0
    baseline = json.loads(baseline_path.read_text())
    problems = check_against_baseline(result, baseline)
    if problems:
        for p in problems:
            print(f"PERF-SMOKE FAIL: {p}", file=sys.stderr)
        return 1
    print(f"[perf-smoke OK vs {baseline_path}]")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    raise SystemExit(main())
