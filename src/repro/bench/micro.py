"""Fixed engine micro-sweep with machine-readable output.

``python -m repro.bench micro`` runs eight fixed DiggerBees simulations
(two road networks, a preferential-attachment graph, a Delaunay mesh,
two steal-heavy cases — a deep skewed tree and a hub-rooted power-law
graph on tight stack geometry — and two shallow-wide cases — a hub
mesh and a layered fan-out — the structural regimes that stress
different engine paths), and writes ``BENCH_engine.json`` with
wall-time, simulated cycles, steps/sec, and steal/refill event counts
per case.  That file seeds the performance trajectory: future perf PRs
compare against the recorded baseline
(``benchmarks/baseline_micro.json``) and the run **fails** when

* any case regresses more than ``REGRESSION_FACTOR`` (2x) in wall time
  (the perf-smoke gate), or
* any case's simulated ``cycles``/``steps`` differ from the baseline —
  the determinism contract (same seed => identical schedule) has been
  broken, which is a correctness bug, not a perf regression.

The sweep is intentionally single-process so the numbers measure the
engine fast path, not pool scaling.  Per case the recorded wall time is
the **median** of ``repeats`` runs (median-of-3 by default) — robust to
one-off scheduler hiccups in either direction, unlike a minimum, which
systematically understates the cost the gate will later measure.

The corpus routes through :mod:`repro.graphs.diskcache`, so only a cold
cache pays generation cost; the hit/miss tally is part of the payload.

``--turbo`` runs every case through the turbo fused loop
(:mod:`repro.core.turbo`); cycles/steps are bit-identical to the default
engine, so the same baseline gates both modes.  ``--backend
{auto,dfs,frontier,swarm}`` selects the engine *family*: ``frontier``
runs every case through the bit-packed SpMV engine
(:mod:`repro.core.frontier`), recording MTEPS and the level profile
instead of simulated cycles; ``swarm`` runs every case as ``--batch``
lockstep lanes of the multi-root bit-matrix engine
(:mod:`repro.core.swarm`) and records the amortized per-root wall —
the frontier analogue of ``--batch`` on the hive; ``auto`` routes each
case per graph regime through
:func:`repro.core.dispatch.choose_backend` (frontier/swarm-run cases
are exempt from the cycles/wall baseline gate — they have no simulated
schedule; DFS-run cases stay gated).  ``--record`` appends the
run to ``benchmarks/out/trajectory.jsonl`` (timestamped) and rewrites
the repo-root ``BENCH_engine.json`` snapshot.

Gating refuses to run when any case reports ``exact_cycles == False``
(an engine configured with ``poll_interval > 1`` can overshoot
termination): comparing inexact cycle counts against the baseline would
report schedule drift that is really measurement slack.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import statistics
import sys
import time
from datetime import datetime, timezone
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.config import DiggerBeesConfig
from repro.core.diggerbees import run_diggerbees
from repro.errors import BenchmarkError
from repro.graphs import diskcache
from repro.graphs import generators as gen
from repro.utils.profiling import PhaseTimer, profile_to, steps_per_second

__all__ = [
    "MICRO_CASES",
    "REGRESSION_FACTOR",
    "run_micro",
    "check_against_baseline",
    "record_trajectory",
    "compare_trajectory",
    "main",
]

#: Wall-time factor over baseline at which the perf-smoke gate fails.
REGRESSION_FACTOR = 2.0


def _corpus_case(kind: str, name: str, params: Dict, seed: int) -> Callable:
    """Builder routed through the corpus disk cache (hit == rebuild)."""
    def build():
        return diskcache.cached_build(
            kind, name, params, seed,
            lambda: getattr(gen, kind)(**params, seed=seed),
        )
    return build


#: (name, graph builder, engine config) — fixed forever; changing a case
#: invalidates the recorded baseline.
MICRO_CASES: Tuple[Tuple[str, Callable, DiggerBeesConfig], ...] = (
    ("road1000",
     _corpus_case("road_network", "road1000", {"n_vertices": 1000}, 1),
     DiggerBeesConfig(n_blocks=4, warps_per_block=4, seed=1)),
    ("road2500",
     _corpus_case("road_network", "road2500", {"n_vertices": 2500}, 2),
     DiggerBeesConfig(n_blocks=4, warps_per_block=4, seed=2)),
    ("pa2000",
     _corpus_case("preferential_attachment", "pa2000",
                  {"n_vertices": 2000, "m": 6}, 3),
     DiggerBeesConfig(n_blocks=8, warps_per_block=4, seed=3)),
    ("mesh1500",
     _corpus_case("delaunay_mesh", "mesh1500", {"n_vertices": 1500}, 4),
     DiggerBeesConfig(n_blocks=4, warps_per_block=8, seed=4)),
    # Steal-heavy regime: tight stack geometry so bailout events
    # (refills, intra/inter steals, leader work) dominate the schedule
    # instead of the expand fast path.  skew3000 is a deep skewed tree
    # (one warp owns the spine, the rest hammer the steal protocol);
    # hub2500 is a hub-rooted power-law graph (a burst of work at the
    # root that must spread by stealing).
    ("skew3000",
     _corpus_case("skewed_tree", "skew3000", {"n_vertices": 3000}, 5),
     DiggerBeesConfig(n_blocks=4, warps_per_block=4, hot_size=16,
                      hot_cutoff=4, cold_cutoff=8, flush_batch=4,
                      refill_batch=4, cold_reserve=64, seed=5)),
    ("hub2500",
     _corpus_case("preferential_attachment", "hub2500",
                  {"n_vertices": 2500, "m": 4}, 6),
     DiggerBeesConfig(n_blocks=8, warps_per_block=4, hot_size=16,
                      hot_cutoff=4, cold_cutoff=8, flush_batch=4,
                      refill_batch=4, cold_reserve=64, seed=6)),
    # Shallow-wide regime: the frontier engine's winning shape (few BFS
    # levels, huge frontiers).  starmesh2400 is a hub mesh with pendant
    # leaves; layers2000 is a root feeding five 400-wide layers.  The
    # DFS engines run them too, so --backend can compare both families
    # on the same cases.
    ("starmesh2400",
     _corpus_case("star_mesh", "starmesh2400",
                  {"n_hubs": 120, "leaves_per_hub": 19}, 7),
     DiggerBeesConfig(n_blocks=8, warps_per_block=4, seed=7)),
    ("layers2000",
     _corpus_case("wide_layers", "layers2000",
                  {"width": 400, "depth": 5}, 8),
     DiggerBeesConfig(n_blocks=8, warps_per_block=4, seed=8)),
)


def _case_events(counters) -> Dict:
    """Steal/refill protocol event counts for the bench payload."""
    return {
        "refills": counters.refills,
        "refill_entries": counters.refill_entries,
        "intra_steals": counters.intra_steal_successes,
        "intra_steal_attempts": counters.intra_steal_attempts,
        "inter_steals": counters.inter_steal_successes,
        "leader_attempts": counters.inter_steal_attempts,
        "remote_steals": counters.remote_steal_successes,
        "cas_failures": counters.cas_failures,
        "idle_polls": counters.idle_polls,
    }


def run_micro(repeats: int = 3,
              profile_path: Optional[str] = None,
              turbo: bool = False,
              batch: int = 0,
              backend: str = "dfs") -> Dict:
    """Run the fixed micro-sweep; returns the ``BENCH_engine.json`` payload.

    Per case: median-of-``repeats`` wall time, plus the (deterministic)
    simulated cycles and step count.  Graph generation is timed as its
    own phase and excluded from per-case wall times; with a warm corpus
    cache it is a fraction of a millisecond per case (see the
    ``graph_cache`` hit/miss tally in the payload).

    ``batch`` > 0 runs every case as ``batch`` lockstep replicas on the
    hive engine (:mod:`repro.core.hive`); the recorded wall time is the
    median batch wall divided by the batch width — the per-run cost a
    sweep actually pays — and cycles/steps are asserted identical
    across replicas, so the same baseline gates all three modes.

    ``backend`` picks the engine family per case: ``"dfs"`` (default)
    is the simulation sweep above; ``"frontier"`` runs every case on
    the bit-packed SpMV engine (wall + MTEPS + level profile, no
    simulated cycles); ``"swarm"`` runs every case as ``max(1, batch)``
    lockstep lanes of the multi-root bit-matrix engine — the recorded
    wall is the amortized per-root cost, lanes are asserted
    bit-identical, and the payload mirrors the frontier rows (so the
    swarm speedup over single-root frontier reads straight off the
    trajectory); ``"auto"`` routes per graph regime through
    :func:`repro.core.dispatch.choose_backend`.

    The ``phases.simulate`` entry accumulates the per-case *median*
    wall, the same statistic ``wall_seconds`` reports, so it equals
    ``total_wall_seconds`` instead of summing every repeat.
    """
    if turbo and batch:
        raise BenchmarkError(
            "--batch selects the hive engine; it cannot be combined "
            "with --turbo"
        )
    if backend not in ("auto", "dfs", "frontier", "swarm"):
        raise BenchmarkError(
            f"backend must be auto, dfs, frontier, or swarm, "
            f"got {backend!r}")
    if backend == "swarm":
        # Swarm *is* the batched tier: --batch sets its lane count.
        if turbo:
            raise BenchmarkError(
                "--backend swarm selects the lockstep frontier engine; "
                "it cannot be combined with --turbo"
            )
    elif backend != "dfs" and (turbo or batch):
        raise BenchmarkError(
            "--backend frontier/auto selects the engine family; it "
            "cannot be combined with --turbo or --batch"
        )
    timer = PhaseTimer()
    cases: List[Dict] = []
    diskcache.reset_stats()
    with profile_to(profile_path):
        for name, build, cfg in MICRO_CASES:
            if turbo:
                cfg = cfg.with_overrides(turbo=True)
            with timer.phase("generate"):
                graph = build()
            walls: List[float] = []
            result = None
            hive_stats: Optional[Dict] = None
            use_frontier = backend == "frontier"
            if backend == "auto":
                from repro.core.dispatch import choose_backend

                use_frontier = (choose_backend(graph, requested="auto")
                                .backend == "frontier")
            if backend == "swarm":
                from repro.core.swarm import run_swarm

                lanes = max(1, batch)
                sres = None
                for _ in range(max(1, repeats)):
                    t0 = time.perf_counter()
                    results = run_swarm(graph, [0] * lanes)
                    # Amortized per-root wall, the cost a batched sweep
                    # actually pays per query (mirrors hive --batch).
                    walls.append((time.perf_counter() - t0) / lanes)
                sres = results[0]
                for i, r in enumerate(results[1:], start=1):
                    if (r.n_levels != sres.n_levels
                            or r.edges_scanned != sres.edges_scanned
                            or (r.pushes, r.pulls) != (sres.pushes,
                                                       sres.pulls)):
                        raise BenchmarkError(
                            f"{name}: swarm lane {i} diverged; lockstep "
                            f"determinism contract broken"
                        )
                wall = statistics.median(walls)
                timer.add("simulate", wall)
                cases.append({
                    "name": name,
                    "backend": "swarm",
                    "wall_seconds": wall,
                    "cycles": None,
                    "steps": None,
                    "steps_per_second": None,
                    "exact_cycles": True,
                    "mteps": (sres.edges_scanned / wall / 1e6
                              if wall > 0 else 0.0),
                    "edges_scanned": sres.edges_scanned,
                    "n_levels": sres.n_levels,
                    "pushes": sres.pushes,
                    "pulls": sres.pulls,
                    "events": None,
                    "fallback_lane_fraction": None,
                })
                continue
            if use_frontier:
                from repro.core.frontier import run_frontier

                fres = None
                for _ in range(max(1, repeats)):
                    t0 = time.perf_counter()
                    fres = run_frontier(graph, 0)
                    walls.append(time.perf_counter() - t0)
                wall = statistics.median(walls)
                timer.add("simulate", wall)
                cases.append({
                    "name": name,
                    "backend": "frontier",
                    "wall_seconds": wall,
                    # No simulated schedule: the frontier engine is a
                    # real traversal, so its figure of merit is MTEPS.
                    "cycles": None,
                    "steps": None,
                    "steps_per_second": None,
                    "exact_cycles": True,
                    "mteps": (fres.edges_scanned / wall / 1e6
                              if wall > 0 else 0.0),
                    "edges_scanned": fres.edges_scanned,
                    "n_levels": fres.n_levels,
                    "pushes": fres.pushes,
                    "pulls": fres.pulls,
                    "events": None,
                    "fallback_lane_fraction": None,
                })
                continue
            if batch > 0:
                from repro.core.hive import run_hive

                tasks = [(0, cfg)] * batch
                for _ in range(max(1, repeats)):
                    hive_stats = {}
                    t0 = time.perf_counter()
                    results = run_hive(graph, tasks, stats=hive_stats)
                    walls.append((time.perf_counter() - t0) / batch)
                result = results[0]
                for i, r in enumerate(results[1:], start=1):
                    if (r.cycles != result.cycles
                            or r.engine.steps != result.engine.steps):
                        raise BenchmarkError(
                            f"{name}: hive replica {i} diverged "
                            f"({r.cycles}/{r.engine.steps} vs "
                            f"{result.cycles}/{result.engine.steps}); "
                            f"lockstep determinism contract broken"
                        )
            else:
                for _ in range(max(1, repeats)):
                    t0 = time.perf_counter()
                    result = run_diggerbees(graph, 0, config=cfg)
                    walls.append(time.perf_counter() - t0)
            wall = statistics.median(walls)
            timer.add("simulate", wall)
            cases.append({
                "name": name,
                "backend": "dfs",
                "wall_seconds": wall,
                "cycles": result.cycles,
                "steps": result.engine.steps,
                "steps_per_second": steps_per_second(result.engine.steps,
                                                     wall),
                "exact_cycles": result.engine.exact_cycles,
                "events": _case_events(result.counters),
                "fallback_lane_fraction": (
                    hive_stats.get("fallback_lane_fraction")
                    if hive_stats is not None else None),
            })
    payload = {
        "bench": "engine_micro",
        "repeats": repeats,
        "turbo": turbo,
        "batch": batch,
        "backend": backend,
        "cases": cases,
        "total_wall_seconds": sum(c["wall_seconds"] for c in cases),
        "phases": timer.as_dict(),
        "graph_cache": diskcache.stats(),
    }
    simulate = payload["phases"].get("simulate", 0.0)
    total = payload["total_wall_seconds"]
    assert abs(simulate - total) <= max(1e-6, 0.01 * total), (
        f"phase accounting drift: phases.simulate={simulate!r} vs "
        f"total_wall_seconds={total!r}"
    )
    return payload


def check_against_baseline(result: Dict, baseline: Dict,
                           factor: float = REGRESSION_FACTOR) -> List[str]:
    """Compare a run against the recorded baseline; returns problems.

    An empty list means the gate passes.  Determinism mismatches
    (cycles/steps) and >``factor`` wall-time regressions are reported;
    cases absent from the baseline are ignored (new cases need a baseline
    update first).

    Raises :class:`~repro.errors.BenchmarkError` when any case carries
    ``exact_cycles == False``: inexact cycle counts (``poll_interval >
    1`` overshoot) cannot be gated against an exact baseline.
    """
    inexact = [c["name"] for c in result["cases"]
               if not c.get("exact_cycles", True)]
    if inexact:
        raise BenchmarkError(
            f"refusing to gate: cases {inexact} report inexact cycle "
            f"counts (engine ran with poll_interval > 1); rerun with an "
            f"exact engine configuration"
        )
    problems: List[str] = []
    base_cases = {c["name"]: c for c in baseline.get("cases", [])}
    for case in result["cases"]:
        base = base_cases.get(case["name"])
        if base is None:
            continue
        if case.get("backend", "dfs") != "dfs":
            # Frontier-run cases carry no simulated schedule and their
            # wall measures a different engine; the DFS baseline does
            # not apply.
            continue
        if case["cycles"] != base["cycles"] or case["steps"] != base["steps"]:
            problems.append(
                f"{case['name']}: schedule drift — cycles/steps "
                f"{case['cycles']}/{case['steps']} vs baseline "
                f"{base['cycles']}/{base['steps']} (determinism contract "
                f"broken)"
            )
        limit = base["wall_seconds"] * factor
        if case["wall_seconds"] > limit:
            problems.append(
                f"{case['name']}: wall time {case['wall_seconds']:.4f}s "
                f"exceeds {factor:.1f}x baseline "
                f"({base['wall_seconds']:.4f}s)"
            )
    return problems


def repo_root() -> pathlib.Path:
    return pathlib.Path(__file__).resolve().parents[3]


def default_baseline_path() -> pathlib.Path:
    """``benchmarks/baseline_micro.json`` relative to the repo root."""
    return repo_root() / "benchmarks" / "baseline_micro.json"


def record_trajectory(result: Dict) -> pathlib.Path:
    """Append ``result`` (timestamped) to the perf trajectory log.

    Also rewrites the repo-root ``BENCH_engine.json`` so the committed
    snapshot tracks the latest recorded run.  Returns the trajectory
    path.
    """
    out = repo_root() / "benchmarks" / "out" / "trajectory.jsonl"
    out.parent.mkdir(parents=True, exist_ok=True)
    entry = dict(result)
    entry["timestamp"] = datetime.now(timezone.utc).isoformat(
        timespec="seconds")
    with out.open("a", encoding="utf-8") as f:
        f.write(json.dumps(entry) + "\n")
    (repo_root() / "BENCH_engine.json").write_text(
        json.dumps(result, indent=1) + "\n")
    return out


def _mode_tag(entry: Dict) -> str:
    if entry.get("turbo"):
        return "turbo"
    if entry.get("backend", "dfs") == "swarm":
        return f"swarm:{entry.get('batch') or 1}"
    if entry.get("batch"):
        return f"hive:{entry['batch']}"
    if entry.get("backend", "dfs") != "dfs":
        return entry["backend"]
    return "scalar"


def compare_trajectory(a_idx: int, b_idx: int,
                       path: Optional[pathlib.Path] = None) -> str:
    """Diff two recorded trajectory entries; returns a per-case table.

    ``a_idx``/``b_idx`` index ``benchmarks/out/trajectory.jsonl`` in
    append order (negative indices count from the latest, so ``-2 -1``
    compares the two most recent recordings).  Per case the table shows
    wall time and steps/s for both entries plus the relative change,
    flagging >5% moves as regression/improvement; schedule drift
    (cycles/steps differing between the entries) is flagged too, since
    that invalidates the perf comparison.
    """
    path = path or (repo_root() / "benchmarks" / "out" / "trajectory.jsonl")
    if not path.exists():
        raise BenchmarkError(
            f"no trajectory at {path}; record runs with --record first"
        )
    entries = [json.loads(line) for line in
               path.read_text(encoding="utf-8").splitlines() if line.strip()]
    n = len(entries)
    try:
        ea, eb = entries[a_idx], entries[b_idx]
    except IndexError:
        raise BenchmarkError(
            f"trajectory has {n} entries; indices {a_idx}/{b_idx} are out "
            f"of range"
        ) from None
    lines = [
        f"A: entry {a_idx % n} [{_mode_tag(ea)}] {ea.get('timestamp', '?')}",
        f"B: entry {b_idx % n} [{_mode_tag(eb)}] {eb.get('timestamp', '?')}",
        f"{'case':<10s} {'wall A':>9s} {'wall B':>9s} {'steps/s A':>10s} "
        f"{'steps/s B':>10s} {'change':>8s}",
    ]
    a_cases = {c["name"]: c for c in ea.get("cases", [])}
    flagged = 0
    for cb in eb.get("cases", []):
        ca = a_cases.get(cb["name"])
        if (cb.get("backend", "dfs") != "dfs"
                or (ca is not None and ca.get("backend", "dfs") != "dfs")):
            # Frontier rows have no steps/s; cross-family wall diffs
            # belong to the crossover bench, not this table.
            lines.append(f"{cb['name']:<10s}   [{cb.get('backend', 'dfs')}] "
                         f"wall {cb['wall_seconds']:.4f}s — "
                         f"not comparable across engine families")
            continue
        if ca is None:
            lines.append(f"{cb['name']:<10s} {'—':>9s} "
                         f"{cb['wall_seconds']:9.4f} {'—':>10s} "
                         f"{cb['steps_per_second']:>10.0f}   (new case)")
            continue
        sps_a = ca["steps_per_second"]
        sps_b = cb["steps_per_second"]
        change = (sps_b / sps_a - 1.0) if sps_a > 0 else float("inf")
        mark = ""
        if (ca["cycles"], ca["steps"]) != (cb["cycles"], cb["steps"]):
            mark = "  SCHEDULE DRIFT"
            flagged += 1
        elif change <= -0.05:
            mark = "  regression"
            flagged += 1
        elif change >= 0.05:
            mark = "  improvement"
        lines.append(
            f"{cb['name']:<10s} {ca['wall_seconds']:9.4f} "
            f"{cb['wall_seconds']:9.4f} {sps_a:>10.0f} {sps_b:>10.0f} "
            f"{change:>+7.1%}{mark}"
        )
    missing = [name for name in a_cases
               if name not in {c["name"] for c in eb.get("cases", [])}]
    if missing:
        lines.append(f"cases only in A: {', '.join(missing)}")
    lines.append(f"flagged: {flagged}")
    return "\n".join(lines)


def render(result: Dict) -> str:
    mode = " [turbo]" if result.get("turbo") else ""
    if result.get("batch"):
        mode = f" [hive batch={result['batch']}]"
    if result.get("backend", "dfs") != "dfs":
        mode = f" [backend={result['backend']}]"
        if result.get("backend") == "swarm":
            mode = f" [swarm batch={result.get('batch') or 1}]"
    lines = [f"{'case':<12s} {'wall(s)':>9s} {'cycles':>10s} {'steps':>7s} "
             f"{'steps/s':>10s}{mode}"]
    for c in result["cases"]:
        if c.get("backend", "dfs") in ("frontier", "swarm"):
            lines.append(
                f"{c['name']:<12s} {c['wall_seconds']:9.4f} "
                f"{c['backend']:>10s} {c['n_levels']:>5d}L "
                f"{c['mteps']:>8.1f} MTEPS"
            )
            continue
        lines.append(
            f"{c['name']:<12s} {c['wall_seconds']:9.4f} {c['cycles']:>10d} "
            f"{c['steps']:>7d} {c['steps_per_second']:>10.0f}"
        )
    lines.append(f"total wall: {result['total_wall_seconds']:.4f}s "
                 f"(median of {result['repeats']})")
    cache = result.get("graph_cache")
    if cache is not None:
        lines.append(f"graph cache: {cache['hits']} hits, "
                     f"{cache['misses']} misses")
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench micro",
        description="Fixed engine micro-sweep (perf-smoke gate).",
    )
    parser.add_argument("--quick", action="store_true",
                        help="single repeat per case")
    parser.add_argument("--turbo", action="store_true",
                        help="run every case with the turbo fused loop "
                             "(bit-identical cycles/steps)")
    parser.add_argument("--batch", type=int, default=0, metavar="N",
                        help="run every case as N lockstep replicas on "
                             "the hive engine (bit-identical "
                             "cycles/steps; wall time is per run)")
    parser.add_argument("--backend", default="dfs",
                        choices=("auto", "dfs", "frontier", "swarm"),
                        help="engine family: frontier runs the "
                             "bit-packed SpMV engine (MTEPS, no "
                             "simulated cycles); swarm runs --batch "
                             "lockstep lanes of the multi-root engine "
                             "(amortized per-root wall); auto routes "
                             "per graph regime; frontier/swarm-run "
                             "cases skip the cycles/wall baseline gate")
    parser.add_argument("--compare", nargs=2, type=int, metavar=("A", "B"),
                        default=None,
                        help="diff two recorded trajectory entries by "
                             "index (negative = from latest) and exit")
    parser.add_argument("--json", type=pathlib.Path,
                        default=pathlib.Path("BENCH_engine.json"),
                        help="output path for the machine-readable result")
    parser.add_argument("--record", action="store_true",
                        help="append this run to "
                             "benchmarks/out/trajectory.jsonl and rewrite "
                             "the repo-root BENCH_engine.json")
    parser.add_argument("--baseline", type=pathlib.Path, default=None,
                        help="baseline JSON to gate against "
                             "(default: benchmarks/baseline_micro.json)")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline with this run's numbers")
    parser.add_argument("--no-check", action="store_true",
                        help="emit results without gating")
    parser.add_argument("--profile", metavar="PATH", default=None,
                        help="dump cProfile stats of the sweep to PATH")
    args = parser.parse_args(argv)

    if args.compare is not None:
        try:
            print(compare_trajectory(args.compare[0], args.compare[1]))
        except BenchmarkError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        return 0
    if args.turbo and args.batch:
        parser.error("--batch selects the hive engine; drop --turbo")
    if args.backend == "swarm":
        if args.turbo:
            parser.error("--backend swarm cannot combine with --turbo")
    elif args.backend != "dfs" and (args.turbo or args.batch):
        parser.error("--backend frontier/auto cannot combine with "
                     "--turbo/--batch")

    result = run_micro(repeats=1 if args.quick else 3,
                       profile_path=args.profile,
                       turbo=args.turbo,
                       batch=args.batch,
                       backend=args.backend)
    args.json.write_text(json.dumps(result, indent=1) + "\n")
    print(render(result))
    print(f"[wrote {args.json}]")
    if args.record:
        trajectory = record_trajectory(result)
        print(f"[recorded to {trajectory}]")

    baseline_path = args.baseline or default_baseline_path()
    if args.update_baseline:
        baseline_path.parent.mkdir(parents=True, exist_ok=True)
        baseline_path.write_text(json.dumps(result, indent=1) + "\n")
        print(f"[baseline updated: {baseline_path}]")
        return 0
    if args.no_check:
        return 0
    if not baseline_path.exists():
        print(f"[no baseline at {baseline_path}; run with --update-baseline "
              f"to record one]", file=sys.stderr)
        return 0
    baseline = json.loads(baseline_path.read_text())
    try:
        problems = check_against_baseline(result, baseline)
    except BenchmarkError as exc:
        print(f"PERF-SMOKE FAIL: {exc}", file=sys.stderr)
        return 1
    if problems:
        for p in problems:
            print(f"PERF-SMOKE FAIL: {p}", file=sys.stderr)
        return 1
    print(f"[perf-smoke OK vs {baseline_path}]")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    raise SystemExit(main())
