"""Command-line entry point: regenerate the paper's tables and figures.

Usage::

    python -m repro.bench all                 # everything (slow)
    python -m repro.bench fig6 fig8           # selected experiments
    python -m repro.bench table2 --out out/   # archive to a directory
    python -m repro.bench fig5 --quick        # shrunken corpus
    python -m repro.bench fig5 --jobs 4       # parallel sweep workers
    python -m repro.bench micro --quick       # engine perf-smoke gate
    python -m repro.bench fig7 --profile p.out  # cProfile the run

Each experiment prints its paper-shaped table to stdout and, with
``--out``, writes it to ``<out>/<name>.txt``.  ``micro`` is special: it
runs the fixed engine micro-sweep, writes ``BENCH_engine.json``, and
fails when the run regresses >2x against the recorded baseline (see
:mod:`repro.bench.micro`; it takes its own flags such as
``--update-baseline``).
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time
from typing import Callable, Dict

from repro.bench import experiments as E
from repro.bench.harness import BenchConfig
from repro.graphs import collections as col

__all__ = ["main"]


def _fig5(cfg: BenchConfig, quick: bool, csv_dir=None) -> str:
    sizes = [1200, 3600] if quick else None
    corpus = col.build_corpus(sizes=sizes) if sizes else None
    result = E.fig5(cfg, corpus=corpus)
    if csv_dir:
        from repro.bench.csvout import write_dfs_perf_csv

        write_dfs_perf_csv(result, csv_dir / "merged_dfs_perf.csv")
    return result.render()


def _fig6(cfg: BenchConfig, quick: bool, csv_dir=None) -> str:
    result = E.fig6(cfg)
    if csv_dir:
        from repro.bench.csvout import write_bfs_perf_csv, write_rep_perf_csv

        write_bfs_perf_csv(result, csv_dir / "merged_bfs_perf.csv")
        write_rep_perf_csv(result, csv_dir / "merged_perf_rep.csv")
    return result.render()


def _fig7(cfg: BenchConfig, quick: bool) -> str:
    sizes = [1200] if quick else [1200, 3600, 9000]
    return E.fig7(cfg, corpus=col.build_corpus(sizes=sizes)).render()


def _fig8(cfg: BenchConfig, quick: bool) -> str:
    return E.fig8(cfg, scale=1 if quick else 2).render()


def _fig9(cfg: BenchConfig, quick: bool, csv_dir=None) -> str:
    result = E.fig9(cfg, repeats=2 if quick else 3, scale=1 if quick else 2)
    if csv_dir:
        from repro.bench.csvout import write_balance_csvs

        write_balance_csvs(result, csv_dir)
    return result.render()


def _fig10(cfg: BenchConfig, quick: bool) -> str:
    graphs = list(col.BREAKDOWN_NAMES[:2]) if quick else None
    return E.fig10(cfg, graphs=graphs).render()


#: Experiments taking (cfg, quick) and optionally csv_dir (kw-only here).
EXPERIMENTS: Dict[str, Callable] = {
    "table1": lambda cfg, q: E.table1(),
    "table2": lambda cfg, q: E.table2(),
    "table3": lambda cfg, q: E.table3(),
    "table4": lambda cfg, q: E.table4(seed=cfg.seed),
    "fig5": _fig5,
    "fig6": _fig6,
    "fig7": _fig7,
    "fig8": _fig8,
    "fig9": _fig9,
    "fig10": _fig10,
}

#: Experiments that also emit artifact-compatible CSVs (Appendix A.4).
CSV_CAPABLE = {"fig5", "fig6", "fig9"}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the DiggerBees paper's tables and figures "
                    "on the simulated devices.",
    )
    parser.add_argument(
        "experiments", nargs="+",
        help=f"experiment names ({', '.join(EXPERIMENTS)}) or 'all'",
    )
    parser.add_argument("--out", type=pathlib.Path, default=None,
                        help="directory to archive rendered tables into")
    parser.add_argument("--csv", type=pathlib.Path, default=None,
                        help="directory for artifact-compatible CSVs "
                             "(merged_dfs_perf.csv etc.; fig5/fig6/fig9)")
    parser.add_argument("--quick", action="store_true",
                        help="shrink corpora/repeats for a fast smoke run")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--sim-scale", type=float, default=0.125,
                        help="fraction of the real machines to simulate")
    parser.add_argument("--roots", type=int, default=2,
                        help="source vertices per graph (paper uses 64)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for sweep fan-out "
                             "(results are identical for any value)")
    parser.add_argument("--profile", metavar="PATH", default=None,
                        help="dump cProfile stats of the experiment run "
                             "to PATH (inspect with python -m pstats)")
    return parser


def main(argv=None) -> int:
    from repro.utils.malloc import retain_large_blocks

    # Benchmarks time batch engines whose transient state dwarfs the
    # default mmap threshold; retain the arena so repeat calls measure
    # the engine, not page re-faulting.
    retain_large_blocks()

    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] == "micro":
        # The micro-sweep has its own flags (baseline gating); delegate.
        from repro.bench.micro import main as micro_main

        return micro_main(argv[1:])

    args = build_parser().parse_args(argv)
    names = list(EXPERIMENTS) if "all" in args.experiments else args.experiments
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}; "
              f"available: {', '.join(EXPERIMENTS)}, micro", file=sys.stderr)
        return 2

    cfg = BenchConfig(sim_scale=args.sim_scale, n_roots=args.roots,
                      seed=args.seed, jobs=args.jobs)
    if args.out:
        args.out.mkdir(parents=True, exist_ok=True)
    if args.csv:
        args.csv.mkdir(parents=True, exist_ok=True)
    from repro.utils.profiling import profile_to

    with profile_to(args.profile):
        for name in names:
            start = time.time()
            if name in CSV_CAPABLE:
                text = EXPERIMENTS[name](cfg, args.quick, csv_dir=args.csv)
            else:
                text = EXPERIMENTS[name](cfg, args.quick)
            elapsed = time.time() - start
            print(text)
            print(f"[{name} regenerated in {elapsed:.1f}s]\n")
            if args.out:
                (args.out / f"{name}.txt").write_text(text + "\n")
    if args.profile:
        print(f"[cProfile stats written to {args.profile}]")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
