"""Artifact-compatible CSV outputs (paper Appendix A.4).

The paper's artifact emits merged CSV summaries; this module reproduces
the same files from our experiment results so downstream tooling (the
artifact's plotting scripts, spreadsheets) can consume either source:

* ``merged_dfs_perf.csv`` — four DFS methods over the corpus (Fig 5 data);
* ``merged_bfs_perf.csv`` — both BFS baselines + per-graph best (Fig 6);
* ``merged_perf_rep.csv`` — all methods on the representative graphs;
* ``balance_baseline/balance_<graph>.csv`` and
  ``balance_diggerbees/balance_<graph>.csv`` — per-block task counts
  (Fig 9 data).
"""

from __future__ import annotations

import csv
import pathlib
from typing import Union

from repro.bench.experiments import Fig5Result, Fig6Result, Fig9Result

__all__ = [
    "write_dfs_perf_csv",
    "write_bfs_perf_csv",
    "write_rep_perf_csv",
    "write_balance_csvs",
]

PathLike = Union[str, pathlib.Path]

_DFS_COLUMNS = ("CKL-PDFS", "ACR-PDFS", "NVG-DFS", "DiggerBees")


def _open_writer(path: pathlib.Path):
    path.parent.mkdir(parents=True, exist_ok=True)
    return open(path, "w", newline="")


def write_dfs_perf_csv(result: Fig5Result, path: PathLike) -> pathlib.Path:
    """``merged_dfs_perf.csv``: graph, edges, then MTEPS per DFS method.

    Failed runs (NVG memory exhaustion) are written as 0.0, matching the
    artifact's convention.
    """
    path = pathlib.Path(path)
    with _open_writer(path) as fh:
        writer = csv.writer(fh)
        writer.writerow(["graph", "edges"] + [m.lower().replace("-", "_")
                                              for m in _DFS_COLUMNS])
        for row in result.rows:
            writer.writerow([row["graph"], row["edges"]]
                            + [f"{row[m]:.3f}" for m in _DFS_COLUMNS])
    return path


def write_bfs_perf_csv(result: Fig6Result, path: PathLike) -> pathlib.Path:
    """``merged_bfs_perf.csv``: BFS baselines and the per-graph best.

    The Fig 6 experiment records only the best BFS value per graph; the
    per-method split is recomputed cheaply if needed by callers — this
    file carries graph, best value, and which regime the graph is in.
    """
    path = pathlib.Path(path)
    with _open_writer(path) as fh:
        writer = csv.writer(fh)
        writer.writerow(["graph", "regime", "best_bfs_mteps"])
        for row in result.rows:
            writer.writerow([row["graph"], row["regime"],
                             f"{row['BestBFS']:.3f}"])
    return path


def write_rep_perf_csv(result: Fig6Result, path: PathLike) -> pathlib.Path:
    """``merged_perf_rep.csv``: all methods on the representative graphs."""
    path = pathlib.Path(path)
    with _open_writer(path) as fh:
        writer = csv.writer(fh)
        writer.writerow(["graph", "regime"]
                        + [m.lower().replace("-", "_") for m in _DFS_COLUMNS]
                        + ["best_bfs"])
        for row in result.rows:
            writer.writerow([row["graph"], row["regime"]]
                            + [f"{row[m]:.3f}" for m in _DFS_COLUMNS]
                            + [f"{row['BestBFS']:.3f}"])
    return path


def write_balance_csvs(result: Fig9Result, out_dir: PathLike) -> list:
    """``balance_baseline/`` and ``balance_diggerbees/`` per-graph files.

    Each file holds one task count per line (one line per block sample),
    the exact format the artifact's violin-plot script reads.
    """
    out_dir = pathlib.Path(out_dir)
    written = []
    for row in result.rows:
        for policy, key in (("baseline", "baseline"),
                            ("diggerbees", "diggerbees")):
            path = out_dir / f"balance_{policy}" / f"balance_{row['graph']}.csv"
            with _open_writer(path) as fh:
                writer = csv.writer(fh)
                writer.writerow(["tasks_per_block"])
                for t in row[key].tasks:
                    writer.writerow([t])
            written.append(path)
    return written
