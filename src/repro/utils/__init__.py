"""Shared utilities: seeded RNG, table rendering, statistics."""

from repro.utils.rng import DEFAULT_SEED, derive_seed, make_rng, sample_distinct, spawn
from repro.utils.stats import (
    coefficient_of_variation,
    geometric_mean,
    harmonic_mean,
    speedup_series,
    summarize,
)
from repro.utils.tables import format_kv, format_table, print_table

__all__ = [
    "DEFAULT_SEED",
    "make_rng",
    "spawn",
    "derive_seed",
    "sample_distinct",
    "geometric_mean",
    "harmonic_mean",
    "coefficient_of_variation",
    "summarize",
    "speedup_series",
    "format_table",
    "print_table",
    "format_kv",
]
