"""Plain-text table rendering for benchmark reports.

The benchmark harness regenerates the paper's tables and figure series as
aligned ASCII tables on stdout (this repository has no plotting
dependency).  The formatter here is deliberately small: fixed-width
columns, optional per-column alignment and float formatting, and a
markdown mode for pasting into EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence


def _fmt_cell(value: object, floatfmt: str) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return format(value, floatfmt)
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    floatfmt: str = ".2f",
    aligns: Optional[Sequence[str]] = None,
    markdown: bool = False,
    title: str = "",
) -> str:
    """Render ``rows`` under ``headers`` as an aligned text table.

    Parameters
    ----------
    aligns:
        Per-column ``"l"`` or ``"r"``; defaults to left for the first
        column and right for the rest (the common name-then-numbers case).
    markdown:
        Emit a GitHub-flavoured markdown table instead of box-drawing.
    """
    str_rows: List[List[str]] = [[_fmt_cell(v, floatfmt) for v in row] for row in rows]
    ncol = len(headers)
    for r in str_rows:
        if len(r) != ncol:
            raise ValueError(f"row has {len(r)} cells, expected {ncol}: {r}")
    if aligns is None:
        aligns = ["l"] + ["r"] * (ncol - 1)
    widths = [
        max(len(str(headers[c])), *(len(r[c]) for r in str_rows)) if str_rows else len(str(headers[c]))
        for c in range(ncol)
    ]

    def pad(text: str, width: int, align: str) -> str:
        return text.rjust(width) if align == "r" else text.ljust(width)

    lines: List[str] = []
    if title:
        lines.append(title)
    if markdown:
        widths = [max(w, 3) for w in widths]  # GFM separators need >= 3 dashes
        lines.append("| " + " | ".join(pad(str(h), w, a) for h, w, a in zip(headers, widths, aligns)) + " |")
        seps = [("-" * (w - 1) + ":") if a == "r" else ("-" * w) for w, a in zip(widths, aligns)]
        lines.append("| " + " | ".join(seps) + " |")
        for r in str_rows:
            lines.append("| " + " | ".join(pad(c, w, a) for c, w, a in zip(r, widths, aligns)) + " |")
    else:
        rule = "+".join("-" * (w + 2) for w in widths)
        lines.append(rule)
        lines.append(" | ".join(pad(str(h), w, a) for h, w, a in zip(headers, widths, aligns)))
        lines.append(rule)
        for r in str_rows:
            lines.append(" | ".join(pad(c, w, a) for c, w, a in zip(r, widths, aligns)))
        lines.append(rule)
    return "\n".join(lines)


def print_table(headers: Sequence[str], rows: Iterable[Sequence[object]], **kwargs) -> None:
    """Format and print a table (see :func:`format_table`)."""
    print(format_table(headers, rows, **kwargs))


def format_kv(pairs: Sequence[tuple], indent: int = 2) -> str:
    """Render ``(key, value)`` pairs as an aligned two-column block."""
    if not pairs:
        return ""
    width = max(len(str(k)) for k, _ in pairs)
    pad = " " * indent
    return "\n".join(f"{pad}{str(k).ljust(width)} : {v}" for k, v in pairs)
