"""Amortized bounded-integer draws, bit-exact with ``Generator.integers``.

The inter-block victim sampler draws thousands of tiny bounded integers
per run through ``np.random.Generator.integers``.  Each call costs ~2 us
of argument parsing and scalar boxing while the underlying PCG64 step is
nanoseconds — for the simulator's hot loop that per-call overhead is the
single largest avoidable cost.

:class:`BoundedDraws` replays NumPy's own algorithm in Python over raw
64-bit draws fetched in bulk from the wrapped generator's bit generator:
for ranges below 2**32 ``Generator.integers`` consumes buffered 32-bit
halves of the raw stream and maps them through Lemire's unbiased
rejection method (``buffered_bounded_lemire_uint32``).  Replicating both
the half-word buffering and the rejection loop makes every draw — value
*and* stream consumption — identical to what the wrapped generator would
have produced, so schedules stay bit-identical with recorded baselines.

Because the replica depends on NumPy internals that are stable but not
contractual, :func:`wrap_generator` validates the replica against a real
``Generator`` once per process and silently falls back to the plain
generator on any mismatch.  Callers only ever see the two-argument
``integers(lo, hi)`` surface that both objects share.
"""

from __future__ import annotations

import random
from typing import Optional, Union

import numpy as np

__all__ = ["BoundedDraws", "draw_bounded_many", "wrap_generator"]

_U32_MASK = 0xFFFFFFFF


class BoundedDraws:
    """Duck-typed stand-in for ``Generator.integers(lo, hi)`` (small ranges).

    Draws raw 64-bit words in chunks via ``BitGenerator.random_raw`` and
    serves them as buffered 32-bit halves (low half first, high half
    stored), exactly like NumPy's ``next_uint32``.  Only the two-argument
    half-open ``integers`` form is supported, for ranges below 2**32.
    """

    __slots__ = ("_bg", "_raw", "_i", "_n", "_has32", "_buf32", "_chunk")

    def __init__(self, gen: np.random.Generator, chunk: int = 64):
        self._bg = gen.bit_generator
        self._chunk = chunk
        self._raw: list = []
        self._i = 0
        self._n = 0
        self._has32 = False
        self._buf32 = 0

    def integers(self, lo: int, hi: int) -> int:
        """A draw from ``[lo, hi)``, identical to ``Generator.integers``."""
        rng = hi - lo - 1  # inclusive range maximum, as in NumPy
        if rng == 0:
            return lo  # NumPy consumes no stream for a 1-wide range
        if rng < 0 or rng >= _U32_MASK:
            raise ValueError(f"unsupported range [{lo}, {hi})")
        rng_excl = rng + 1
        # -- inline buffered next_uint32 ------------------------------
        if self._has32:
            self._has32 = False
            x = self._buf32
        else:
            i = self._i
            if i >= self._n:
                self._raw = self._bg.random_raw(self._chunk).tolist()
                self._n = self._chunk
                i = 0
            r = self._raw[i]
            self._i = i + 1
            self._has32 = True
            self._buf32 = r >> 32
            x = r & _U32_MASK
        # -- Lemire rejection (buffered_bounded_lemire_uint32) --------
        m = x * rng_excl
        leftover = m & _U32_MASK
        if leftover < rng_excl:
            threshold = (_U32_MASK - rng) % rng_excl
            while leftover < threshold:
                if self._has32:
                    self._has32 = False
                    x = self._buf32
                else:
                    i = self._i
                    if i >= self._n:
                        self._raw = self._bg.random_raw(self._chunk).tolist()
                        self._n = self._chunk
                        i = 0
                    r = self._raw[i]
                    self._i = i + 1
                    self._has32 = True
                    self._buf32 = r >> 32
                    x = r & _U32_MASK
                m = x * rng_excl
                leftover = m & _U32_MASK
        return (m >> 32) + lo


def draw_bounded_many(rngs, lo: int, hi: int) -> np.ndarray:
    """One bounded draw from each generator in ``rngs``, as an int64 array.

    The hive engine's batched leader sampling groups the
    ``victim_policy="random"`` draws of many lanes into a single call:
    each lane's generator (a :class:`BoundedDraws` replica or a plain
    ``Generator``) draws exactly once from ``[lo, hi)``, consuming
    exactly the stream the scalar path would — values *and* stream
    position stay bit-identical per lane, whatever order the lanes are
    grouped in, because every lane owns its own generator.
    """
    return np.fromiter((int(r.integers(lo, hi)) for r in rngs),
                       dtype=np.int64, count=len(rngs))


_REPLICA_OK: Optional[bool] = None

#: How many times the validation probe has actually executed in this
#: interpreter.  The verdict is cached in ``_REPLICA_OK``, so after the
#: first ``wrap_generator`` call this must stay at 1 for the life of the
#: process — a regression test asserts exactly that (the probe costs
#: ~1000 bounded draws; paying it per wrap would tax every RunState).
SELF_CHECK_RUNS = 0


def _self_check() -> bool:
    """Compare the replica with a real Generator on one shared stream."""
    global SELF_CHECK_RUNS
    SELF_CHECK_RUNS += 1
    seed = 0xD1665EED
    probe = random.Random(991)
    rep = BoundedDraws(np.random.default_rng(seed), chunk=8)
    ref = np.random.default_rng(seed)
    for _ in range(256):
        lo = probe.randrange(-4, 5)
        hi = lo + probe.randrange(1, 67)
        if rep.integers(lo, hi) != int(ref.integers(lo, hi)):
            return False
    return True


def wrap_generator(
    gen: np.random.Generator,
) -> Union[BoundedDraws, np.random.Generator]:
    """Wrap ``gen`` in a :class:`BoundedDraws` replica when safe.

    The first call per process validates the replica against NumPy; if
    the installed NumPy ever changes its bounded-integer algorithm the
    check fails and every caller gets the plain (slower, always-correct)
    generator back.
    """
    global _REPLICA_OK
    if _REPLICA_OK is None:
        _REPLICA_OK = _self_check()
    return BoundedDraws(gen) if _REPLICA_OK else gen
