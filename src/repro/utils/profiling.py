"""Lightweight profiling hooks for the benchmark harness.

Three tools, all optional and all zero-cost when unused:

* :class:`PhaseTimer` — named wall-clock phase accumulation (generation
  vs. simulation vs. aggregation) with a one-line-per-phase summary.
* :func:`steps_per_second` — the simulator's primary throughput metric
  (simulated warp actions per wall second).
* :func:`profile_to` — a context manager wrapping a block in
  :mod:`cProfile` and dumping binary stats to a file for ``snakeviz`` /
  ``pstats`` analysis; a ``None`` path disables it entirely.

The benchmark CLI exposes these via ``--profile`` (see
``python -m repro.bench --help``); ``repro.bench.micro`` uses
:class:`PhaseTimer` to separate corpus generation from engine time in
``BENCH_engine.json``.
"""

from __future__ import annotations

import cProfile
import time
from contextlib import contextmanager
from typing import Dict, Iterator, Optional

__all__ = ["PhaseTimer", "steps_per_second", "profile_to"]


class PhaseTimer:
    """Accumulate wall-clock time per named phase.

    ::

        timer = PhaseTimer()
        with timer.phase("generate"):
            corpus = build_corpus()
        with timer.phase("simulate"):
            run_graph(...)
        print(timer.summary())

    Re-entering a phase name accumulates into the same bucket.
    """

    def __init__(self) -> None:
        self._elapsed: Dict[str, float] = {}
        self._counts: Dict[str, int] = {}

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            dt = time.perf_counter() - start
            self._elapsed[name] = self._elapsed.get(name, 0.0) + dt
            self._counts[name] = self._counts.get(name, 0) + 1

    def add(self, name: str, seconds: float) -> None:
        """Accumulate an externally-measured duration into a phase.

        For call sites that derive the representative duration from
        several raw timings (e.g. a median over repeats) instead of
        timing a ``with`` block directly: the derived value lands in
        the same bucket ``phase(name)`` would use.
        """
        self._elapsed[name] = self._elapsed.get(name, 0.0) + seconds
        self._counts[name] = self._counts.get(name, 0) + 1

    def elapsed(self, name: str) -> float:
        """Total seconds accumulated in one phase (0.0 if never entered)."""
        return self._elapsed.get(name, 0.0)

    @property
    def total(self) -> float:
        return sum(self._elapsed.values())

    def as_dict(self) -> Dict[str, float]:
        """Phase -> seconds, insertion-ordered."""
        return dict(self._elapsed)

    def summary(self) -> str:
        """Human-readable per-phase breakdown."""
        if not self._elapsed:
            return "(no phases recorded)"
        total = self.total or 1e-12
        lines = []
        for name, secs in self._elapsed.items():
            lines.append(
                f"{name:<16s} {secs:8.3f}s  {100 * secs / total:5.1f}%  "
                f"({self._counts[name]}x)"
            )
        lines.append(f"{'total':<16s} {self.total:8.3f}s")
        return "\n".join(lines)


def steps_per_second(steps: int, seconds: float) -> float:
    """Simulated warp actions per wall second (0.0 for degenerate input)."""
    if seconds <= 0.0:
        return 0.0
    return steps / seconds


@contextmanager
def profile_to(path: Optional[str]) -> Iterator[Optional[cProfile.Profile]]:
    """Profile the enclosed block with cProfile, dumping stats to ``path``.

    ``path=None`` is a no-op (yields None), so call sites can wrap
    unconditionally::

        with profile_to(args.profile):
            run_experiments()
    """
    if path is None:
        yield None
        return
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        yield profiler
    finally:
        profiler.disable()
        profiler.dump_stats(path)
