"""Small statistics helpers shared by the harness and analysis modules."""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of positive values; the paper's speedup aggregate.

    Non-positive or non-finite entries are rejected rather than silently
    dropped — a zero speedup indicates a failed run that the caller must
    handle explicitly (the paper excludes NVG-DFS failures the same way).
    """
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        raise ValueError("geometric mean of empty sequence")
    if not np.all(np.isfinite(arr)) or np.any(arr <= 0):
        raise ValueError("geometric mean requires positive finite values")
    return float(np.exp(np.mean(np.log(arr))))


def coefficient_of_variation(values: Sequence[float]) -> float:
    """Population std / mean — the load-imbalance metric of paper §4.6 (Fig 9).

    Returns 0 for a constant sequence; raises on an empty one or a zero
    mean (no tasks at all means the measurement itself is broken).
    """
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        raise ValueError("coefficient of variation of empty sequence")
    mean = float(arr.mean())
    if mean == 0.0:
        raise ValueError("coefficient of variation undefined for zero mean")
    return float(arr.std() / mean)


def harmonic_mean(values: Iterable[float]) -> float:
    """Harmonic mean of positive values (rate averaging)."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        raise ValueError("harmonic mean of empty sequence")
    if np.any(arr <= 0):
        raise ValueError("harmonic mean requires positive values")
    return float(arr.size / np.sum(1.0 / arr))


def summarize(values: Sequence[float]) -> dict:
    """Min/median/max/mean/std summary used in load-balance reports."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        raise ValueError("summary of empty sequence")
    return {
        "min": float(arr.min()),
        "median": float(np.median(arr)),
        "max": float(arr.max()),
        "mean": float(arr.mean()),
        "std": float(arr.std()),
        "count": int(arr.size),
    }


def speedup_series(baseline: Sequence[float], candidate: Sequence[float]) -> np.ndarray:
    """Element-wise ``candidate / baseline`` speedups.

    Both series are rates (MTEPS), so higher candidate means speedup > 1.
    Length mismatch is an error; NaN/zero baselines propagate as ``inf``
    markers the caller filters (a baseline that failed on a graph).
    """
    b = np.asarray(baseline, dtype=np.float64)
    c = np.asarray(candidate, dtype=np.float64)
    if b.shape != c.shape:
        raise ValueError(f"series shape mismatch: {b.shape} vs {c.shape}")
    with np.errstate(divide="ignore", invalid="ignore"):
        return c / b
