"""Seeded random-number utilities.

Every stochastic component of the library (graph generators, victim
selection, benchmark source sampling) draws from a ``numpy`` Generator
created here, so a single integer seed makes an entire experiment
deterministic and reproducible — a requirement for the event-driven
simulator (two runs with the same seed produce identical traces).
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

RngLike = Union[int, np.random.Generator, None]

#: Default seed used throughout the test and benchmark suites.
DEFAULT_SEED = 0xD166E4


def make_rng(seed: RngLike = None) -> np.random.Generator:
    """Return a ``numpy`` Generator from a seed, Generator, or ``None``.

    Passing an existing Generator returns it unchanged so callers can
    thread one RNG through a pipeline.  ``None`` yields a generator seeded
    with :data:`DEFAULT_SEED` (NOT entropy) — determinism is the default
    in this library; pass ``numpy.random.default_rng()`` explicitly if you
    want nondeterminism.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        seed = DEFAULT_SEED
    return np.random.default_rng(seed)


def spawn(rng: np.random.Generator, n: int) -> list:
    """Split ``rng`` into ``n`` independent child generators.

    Used when an experiment fans out over graphs or repetitions: each
    child stream is independent of the others, and the split is stable
    under reordering of the children's consumption.
    """
    if n < 0:
        raise ValueError(f"cannot spawn {n} generators")
    return [np.random.default_rng(s) for s in rng.bit_generator.seed_seq.spawn(n)]


def derive_seed(base: int, *components: object) -> int:
    """Derive a stable 63-bit seed from a base seed and hashable context.

    ``derive_seed(seed, "fig5", graph_name)`` gives every (experiment,
    graph) pair its own reproducible stream without manual bookkeeping.
    Uses ``numpy.random.SeedSequence`` entropy mixing rather than
    ``hash()`` so results do not depend on ``PYTHONHASHSEED``.
    """
    mixed = [int(base) & 0x7FFFFFFFFFFFFFFF]
    for comp in components:
        if isinstance(comp, (int, np.integer)):
            mixed.append(int(comp) & 0x7FFFFFFFFFFFFFFF)
        else:
            # Stable string hashing via bytes -> int folding.
            data = str(comp).encode("utf-8")
            acc = 0
            for b in data:
                acc = (acc * 131 + b) & 0x7FFFFFFFFFFFFFFF
            mixed.append(acc)
    seq = np.random.SeedSequence(mixed)
    return int(seq.generate_state(1, dtype=np.uint64)[0] & 0x7FFFFFFFFFFFFFFF)


def sample_distinct(rng: np.random.Generator, n: int, k: int,
                    exclude: Optional[set] = None) -> np.ndarray:
    """Sample ``k`` distinct integers from ``[0, n)`` excluding ``exclude``.

    Used for GAP-style source-vertex sampling and two-choice victim
    selection.  Raises ``ValueError`` if fewer than ``k`` candidates exist.
    """
    exclude = exclude or set()
    avail = n - len([x for x in exclude if 0 <= x < n])
    if k > avail:
        raise ValueError(f"cannot sample {k} distinct values from {avail} candidates")
    if not exclude:
        return rng.choice(n, size=k, replace=False)
    picked: list = []
    seen = set(exclude)
    while len(picked) < k:
        c = int(rng.integers(0, n))
        if c not in seen:
            seen.add(c)
            picked.append(c)
    return np.asarray(picked, dtype=np.int64)
