"""Allocator tuning for batch engines: keep large blocks in the arena.

glibc's malloc serves requests above ``M_MMAP_THRESHOLD`` (128 KiB by
default) with a private ``mmap`` and gives the pages straight back to
the kernel on ``free``.  That is the right default for a process that
allocates one big buffer once — but the lockstep swarm engine allocates
tens of megabytes of *transient* state per batch (the interleaved
parent/level block alone is ``n * B * 16`` bytes), so every call
re-faults every page the previous call just released.  On the starmesh
flagship that soft-fault tax is ~15 ms per 90 ms batch — one sixth of
the wall clock spent in the kernel zeroing pages we are about to
overwrite anyway.

:func:`retain_large_blocks` raises the mmap and trim thresholds so the
main arena grows once to the high-water mark and is reused across
calls.  Long-lived *entry points* opt in (the bench harnesses, the
serve daemon); library code never calls this on import — it is a
process-wide policy decision, and a short-lived CLI that runs one
traversal gains nothing from retaining a 40 MB arena.

Non-glibc platforms (musl, macOS) have no ``mallopt``; the helper then
reports ``False`` and the process simply keeps the platform default.
"""

from __future__ import annotations

import ctypes
import ctypes.util

# glibc mallopt parameter numbers (malloc.h).
_M_TRIM_THRESHOLD = -1
_M_MMAP_THRESHOLD = -3

#: Blocks below this stay in the arena; 1 GiB covers every transient
#: the engines allocate while still letting truly huge corpora mmap.
RETAIN_BYTES = 1 << 30

_applied = False


def retain_large_blocks(threshold: int = RETAIN_BYTES) -> bool:
    """Keep sub-``threshold`` allocations in the malloc arena.

    Idempotent; returns ``True`` if the tunables were applied, ``False``
    on platforms without glibc ``mallopt`` (the call is then a no-op and
    the process keeps its default allocator policy).
    """
    global _applied
    if _applied:
        return True
    try:
        name = ctypes.util.find_library("c")
        libc = ctypes.CDLL(name) if name else ctypes.CDLL(None)
        mallopt = libc.mallopt
    except (OSError, AttributeError):
        return False
    mallopt.argtypes = (ctypes.c_int, ctypes.c_int)
    mallopt.restype = ctypes.c_int
    ok = bool(mallopt(_M_MMAP_THRESHOLD, threshold))
    ok = bool(mallopt(_M_TRIM_THRESHOLD, threshold)) and ok
    _applied = ok
    return ok
